//! Hand-rolled argument parsing (no external CLI dependency).

use dpc::api::TraceFormat;
use dpc::codec::Encoding;
use dpc::coordinator::TransportKind;
use std::fmt;
use std::time::Duration;

/// Which protocol to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Command {
    /// Distributed `(k,(1+ε)t)`-median (Algorithm 1).
    Median,
    /// Distributed `(k,(1+ε)t)`-means.
    Means,
    /// Distributed `(k,t)`-center (Algorithm 2).
    Center,
    /// Uncertain `(k,t)`-median via the compressed graph (Algorithm 3).
    UncertainMedian,
    /// Centralized subquadratic `(k,2t)`-median (Theorem 3.10).
    Subquadratic,
    /// Streaming engine over rows in arrival order (`dpc_stream`).
    Stream,
    /// A cartesian parameter sweep over one of the batch protocols (see
    /// [`SweepSpec`]).
    Sweep,
}

impl Command {
    fn parse(s: &str) -> Result<Self, ParseError> {
        match s {
            "median" => Ok(Command::Median),
            "means" => Ok(Command::Means),
            "center" => Ok(Command::Center),
            "uncertain-median" => Ok(Command::UncertainMedian),
            "subquadratic" => Ok(Command::Subquadratic),
            "stream" => Ok(Command::Stream),
            other => Err(ParseError(format!("unknown command '{other}'"))),
        }
    }
}

/// Objective selector for the `stream` subcommand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamObjective {
    /// Sum of distances.
    Median,
    /// Sum of squared distances.
    Means,
    /// Maximum distance.
    Center,
}

impl StreamObjective {
    fn parse(s: &str) -> Result<Self, ParseError> {
        match s {
            "median" => Ok(StreamObjective::Median),
            "means" => Ok(StreamObjective::Means),
            "center" => Ok(StreamObjective::Center),
            other => Err(ParseError(format!(
                "unknown objective '{other}' (median|means|center)"
            ))),
        }
    }
}

/// The parameter grid behind `dpc sweep`.
///
/// Each list is one sweep axis; the grid is their cartesian product and
/// every cell becomes one `dpc::api::Job` executed in parallel.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepSpec {
    /// The protocol swept (median, means or center).
    pub protocol: Command,
    /// `k` values.
    pub k: Vec<usize>,
    /// `t` values.
    pub t: Vec<usize>,
    /// ε values.
    pub eps: Vec<f64>,
    /// Site counts.
    pub sites: Vec<usize>,
    /// Transport backends.
    pub transports: Vec<TransportKind>,
    /// Wire codecs (the bytes ⇄ quality frontier axis).
    pub encodings: Vec<Encoding>,
    /// Concurrent cells (0 = one per CPU).
    pub parallelism: usize,
}

impl SweepSpec {
    fn new(protocol: Command) -> Self {
        Self {
            protocol,
            k: vec![5],
            t: vec![0],
            eps: vec![1.0],
            sites: vec![4],
            transports: vec![TransportKind::Channel],
            encodings: vec![Encoding::Raw],
            parallelism: 0,
        }
    }
}

/// Parsed invocation.
#[derive(Clone, Debug, PartialEq)]
pub struct Options {
    /// Protocol to run.
    pub command: Command,
    /// Input CSV path.
    pub input: String,
    /// Number of centers.
    pub k: usize,
    /// Outlier budget.
    pub t: usize,
    /// Number of simulated sites.
    pub sites: usize,
    /// Outlier relaxation ε.
    pub eps: f64,
    /// Partition seed.
    pub seed: u64,
    /// Use the 1-round variant (center/median only).
    pub one_round: bool,
    /// Counts-only δ-variant (median/means; 0 disables).
    pub delta: f64,
    /// Emit machine-readable JSON instead of text.
    pub json: bool,
    /// Transport backend the distributed protocols execute on.
    pub transport: TransportKind,
    /// Wire codec protocol messages travel through (`raw` = off).
    pub encoding: Encoding,
    /// Simulated one-way per-message link latency.
    pub latency: Duration,
    /// Simulated link bandwidth in bytes/sec (infinite = off).
    pub bandwidth: f64,
    /// `stream`: points buffered per block before summarization.
    pub block: usize,
    /// `stream`: sliding-window length in points (0 = insertion-only).
    pub window: u64,
    /// `stream`: fleet-wide points between continuous-mode syncs
    /// (0 = single-machine streaming, no protocol).
    pub sync_every: u64,
    /// `stream`: which objective the engine optimizes.
    pub objective: StreamObjective,
    /// Bulk-kernel thread budget inside the solvers (1 = serial).
    pub threads: usize,
    /// Per-attempt dropout probability injected into protocol rounds.
    pub dropout: f64,
    /// Seed behind the injected faults (independent of `--seed`).
    pub fault_seed: u64,
    /// Per-attempt timeout charged when a site fails to answer.
    pub timeout: Option<Duration>,
    /// Extra delivery attempts after a failed one.
    pub retries: u32,
    /// Structured-trace output path (`--trace`; off by default).
    pub trace: Option<String>,
    /// Trace serialization (`--trace-format`; `None` = flag not given,
    /// which the API treats as JSONL).
    pub trace_format: Option<TraceFormat>,
    /// Append the aggregated metrics digest to the output (`--metrics`).
    pub metrics: bool,
    /// `sweep`: the parameter grid (set only for [`Command::Sweep`]).
    pub sweep: Option<SweepSpec>,
}

/// A human-readable parse failure.
#[derive(Debug, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Usage string printed on error / `--help`.
pub const USAGE: &str = "\
usage: dpc <command> [options] <input.csv>

commands:
  median             distributed (k,(1+eps)t)-median   (Algorithm 1)
  means              distributed (k,(1+eps)t)-means
  center             distributed (k,t)-center          (Algorithm 2)
  uncertain-median   uncertain (k,t)-median            (Algorithm 3)
  subquadratic       centralized subquadratic (k,2t)-median (Theorem 3.10)
  stream             streaming (k,t) clustering over rows in arrival order
  sweep <protocol>   cartesian parameter sweep over median|means|center;
                     --k/--t/--eps/--sites/--transport/--encoding accept
                     comma lists (e.g. --k 2,4 --encoding raw,f16); prints
                     a CSV table (or a JSON artifact array with --json)

options:
  --k <int>        number of centers            (default 5)
  --t <int>        outlier budget               (default 0)
  --sites <int>    simulated sites              (default 4)
  --eps <float>    outlier relaxation epsilon   (default 1.0)
  --seed <int>     partition seed               (default 42)
  --delta <float>  counts-only variant delta    (default off)
  --threads <int>  bulk-kernel thread budget inside the solvers
                   (default 1; results are identical at any value)
  --one-round      use the 1-round baseline protocol
  --json           emit JSON (includes per-round comm/compute stats)

transport options (distributed commands and stream --sync-every):
  --transport <channel|tcp|mux>  message-passing backend (default
                             channel): 'channel' keeps one persistent
                             in-process worker per site; 'tcp' runs each
                             site behind a loopback socket with
                             length-prefixed frames; 'mux' keeps the tcp
                             site workers but multiplexes the coordinator
                             side onto a fixed pool of poll(2) event-loop
                             shards (set by --threads), so thousands of
                             sites fit in one process
  --encoding <enc>           wire codec for protocol messages (default
                             raw): raw keeps the exact bytes; f32/f16
                             quantize coordinates lossily; delta packs
                             sorted coordinates losslessly; rlz codes a
                             summary against the previous sync's summary
                             (continuous stream mode)
  --latency <dur>            simulated one-way per-message latency, e.g.
                             5ms, 250us, 1s (bare numbers are ms)
  --bandwidth <rate>         simulated link bandwidth in bytes/sec with
                             optional k/M/G suffix, e.g. 10M

fault-injection options (distributed commands and stream --sync-every;
seed-deterministic, so identical flags reproduce identical runs):
  --dropout <p>     probability in [0,1) that a delivery attempt to a
                    site fails; protocols degrade to the responding sites
  --fault-seed <n>  seed behind the injected faults     (default 0)
  --timeout <dur>   per-attempt timeout charged to simulated time when a
                    site fails to answer, e.g. 50ms     (default: instant
                    failure detection, no time charged)
  --retries <n>     extra delivery attempts after a failure (default 0)

observability options (all commands; zero overhead when absent):
  --trace <file>           write a structured event trace of the run:
                           one JSON object per line (dpc.trace/v1) that
                           is byte-identical across transport backends
                           for identical seeds
  --trace-format <fmt>     trace serialization: 'jsonl' (default) or
                           'chrome' (a trace-event file for
                           chrome://tracing / Perfetto)
  --metrics                aggregate the run into a metrics digest:
                           appended to the text output and carried in
                           the JSON artifact's 'metrics' section

stream options:
  --block <int>       points per summarized block        (default 256)
  --window <int>      sliding-window length in points    (default off)
  --sync-every <int>  continuous distributed mode: run the 2-round sync
                      protocol across --sites every so many points
  --objective <median|means|center>                      (default median)

sweep options:
  --parallelism <int>  concurrent grid cells (default: one per CPU)

synthetic input:
  in place of <input.csv>, `blobs:` generates a seeded Gaussian-blob
  workload for kernel stress, e.g.
    blobs:n=50000,dim=32,clusters=8,imbalance=1.0,outliers=64,seed=7
  keys: n, dim, clusters, imbalance, outliers, sigma, sep, seed
  (point commands and sweep only; uncertain-median still needs a CSV)
";

fn default_options(command: Command) -> Options {
    Options {
        command,
        input: String::new(),
        k: 5,
        t: 0,
        sites: 4,
        eps: 1.0,
        seed: 42,
        one_round: false,
        delta: 0.0,
        json: false,
        block: 256,
        window: 0,
        sync_every: 0,
        objective: StreamObjective::Median,
        transport: TransportKind::Channel,
        encoding: Encoding::Raw,
        latency: Duration::ZERO,
        bandwidth: f64::INFINITY,
        threads: 1,
        dropout: 0.0,
        fault_seed: 0,
        timeout: None,
        retries: 0,
        trace: None,
        trace_format: None,
        metrics: false,
        sweep: None,
    }
}

/// Parses `argv[1..]`.
pub fn parse_args(args: &[String]) -> Result<Options, ParseError> {
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        return Err(ParseError(USAGE.to_string()));
    }
    if args[0] == "sweep" {
        return parse_sweep(&args[1..]);
    }
    let command = Command::parse(&args[0])?;
    let mut opts = default_options(command);
    let mut i = 1;
    while i < args.len() {
        let a = &args[i];
        let take_value = |i: &mut usize| -> Result<String, ParseError> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| ParseError(format!("missing value after '{a}'")))
        };
        match a.as_str() {
            "--k" => opts.k = parse_num(&take_value(&mut i)?, "--k")?,
            "--t" => opts.t = parse_num(&take_value(&mut i)?, "--t")?,
            "--sites" => opts.sites = parse_num(&take_value(&mut i)?, "--sites")?,
            "--seed" => opts.seed = parse_num(&take_value(&mut i)?, "--seed")?,
            "--eps" => opts.eps = parse_float(&take_value(&mut i)?, "--eps")?,
            "--delta" => opts.delta = parse_float(&take_value(&mut i)?, "--delta")?,
            "--block" => opts.block = parse_num(&take_value(&mut i)?, "--block")?,
            "--window" => opts.window = parse_num(&take_value(&mut i)?, "--window")?,
            "--sync-every" => opts.sync_every = parse_num(&take_value(&mut i)?, "--sync-every")?,
            "--objective" => opts.objective = StreamObjective::parse(&take_value(&mut i)?)?,
            "--transport" => opts.transport = parse_transport(&take_value(&mut i)?)?,
            "--encoding" => opts.encoding = parse_encoding(&take_value(&mut i)?)?,
            "--latency" => opts.latency = parse_duration(&take_value(&mut i)?, "--latency")?,
            "--bandwidth" => opts.bandwidth = parse_bandwidth(&take_value(&mut i)?)?,
            "--threads" => opts.threads = parse_num(&take_value(&mut i)?, "--threads")?,
            "--dropout" => opts.dropout = parse_float(&take_value(&mut i)?, "--dropout")?,
            "--fault-seed" => opts.fault_seed = parse_num(&take_value(&mut i)?, "--fault-seed")?,
            "--timeout" => opts.timeout = Some(parse_duration(&take_value(&mut i)?, "--timeout")?),
            "--retries" => opts.retries = parse_num(&take_value(&mut i)?, "--retries")?,
            "--trace" => opts.trace = Some(take_value(&mut i)?),
            "--trace-format" => opts.trace_format = Some(parse_trace_format(&take_value(&mut i)?)?),
            "--metrics" => opts.metrics = true,
            "--one-round" => opts.one_round = true,
            "--json" => opts.json = true,
            other if other.starts_with("--") => {
                return Err(ParseError(format!("unknown option '{other}'")));
            }
            path => {
                if !opts.input.is_empty() {
                    return Err(ParseError(format!("unexpected extra argument '{path}'")));
                }
                opts.input = path.to_string();
            }
        }
        i += 1;
    }
    if opts.input.is_empty() {
        return Err(ParseError("missing input CSV path".into()));
    }
    if opts.k == 0 {
        return Err(ParseError("--k must be positive".into()));
    }
    if opts.sites == 0 {
        return Err(ParseError("--sites must be positive".into()));
    }
    if opts.eps < 0.0 || opts.delta < 0.0 {
        return Err(ParseError("--eps/--delta must be non-negative".into()));
    }
    if opts.threads == 0 {
        return Err(ParseError("--threads must be positive".into()));
    }
    if !(0.0..1.0).contains(&opts.dropout) {
        return Err(ParseError("--dropout must lie in [0, 1)".into()));
    }
    if opts.command == Command::Stream {
        if opts.block == 0 {
            return Err(ParseError("--block must be positive".into()));
        }
        if opts.window > 0 && opts.window < opts.block as u64 {
            return Err(ParseError("--window must be at least one --block".into()));
        }
        if opts.window > 0 && opts.sync_every > 0 {
            return Err(ParseError(
                "--window and --sync-every are mutually exclusive".into(),
            ));
        }
        if opts.sync_every > 0 && opts.objective == StreamObjective::Center {
            return Err(ParseError(
                "--sync-every re-runs Algorithm 1 (median/means only)".into(),
            ));
        }
    }
    Ok(opts)
}

/// Parses `dpc sweep <protocol> [options] <input.csv>`.
fn parse_sweep(args: &[String]) -> Result<Options, ParseError> {
    let Some(proto) = args.first() else {
        return Err(ParseError(
            "sweep needs a protocol: dpc sweep <median|means|center> ...".into(),
        ));
    };
    let protocol = Command::parse(proto)?;
    if !matches!(protocol, Command::Median | Command::Means | Command::Center) {
        return Err(ParseError(format!(
            "sweep supports median|means|center, not '{proto}'"
        )));
    }
    let mut opts = default_options(Command::Sweep);
    let mut spec = SweepSpec::new(protocol);
    let mut i = 1;
    while i < args.len() {
        let a = &args[i];
        let take_value = |i: &mut usize| -> Result<String, ParseError> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| ParseError(format!("missing value after '{a}'")))
        };
        match a.as_str() {
            "--k" => spec.k = parse_list(&take_value(&mut i)?, "--k", parse_num)?,
            "--t" => spec.t = parse_list(&take_value(&mut i)?, "--t", parse_num)?,
            "--eps" => spec.eps = parse_list(&take_value(&mut i)?, "--eps", parse_float)?,
            "--sites" => spec.sites = parse_list(&take_value(&mut i)?, "--sites", parse_num)?,
            "--transport" => {
                spec.transports = parse_list(&take_value(&mut i)?, "--transport", |s, _| {
                    parse_transport(s)
                })?
            }
            "--encoding" => {
                spec.encodings =
                    parse_list(&take_value(&mut i)?, "--encoding", |s, _| parse_encoding(s))?
            }
            "--parallelism" => {
                spec.parallelism = parse_num(&take_value(&mut i)?, "--parallelism")?;
                if spec.parallelism == 0 {
                    return Err(ParseError("--parallelism must be positive".into()));
                }
            }
            "--seed" => opts.seed = parse_num(&take_value(&mut i)?, "--seed")?,
            "--delta" => opts.delta = parse_float(&take_value(&mut i)?, "--delta")?,
            "--latency" => opts.latency = parse_duration(&take_value(&mut i)?, "--latency")?,
            "--bandwidth" => opts.bandwidth = parse_bandwidth(&take_value(&mut i)?)?,
            "--threads" => opts.threads = parse_num(&take_value(&mut i)?, "--threads")?,
            "--one-round" => opts.one_round = true,
            "--json" => opts.json = true,
            other if other.starts_with("--") => {
                return Err(ParseError(format!("unknown sweep option '{other}'")));
            }
            path => {
                if !opts.input.is_empty() {
                    return Err(ParseError(format!("unexpected extra argument '{path}'")));
                }
                opts.input = path.to_string();
            }
        }
        i += 1;
    }
    if opts.input.is_empty() {
        return Err(ParseError("missing input CSV path".into()));
    }
    opts.sweep = Some(spec);
    Ok(opts)
}

/// Splits a comma-separated list and parses each element.
fn parse_list<T>(
    s: &str,
    flag: &str,
    elem: impl Fn(&str, &str) -> Result<T, ParseError>,
) -> Result<Vec<T>, ParseError> {
    let vs: Result<Vec<T>, ParseError> = s.split(',').map(|part| elem(part, flag)).collect();
    let vs = vs?;
    if vs.is_empty() {
        return Err(ParseError(format!("empty list for {flag}")));
    }
    Ok(vs)
}

fn parse_trace_format(s: &str) -> Result<TraceFormat, ParseError> {
    match s {
        "jsonl" => Ok(TraceFormat::Jsonl),
        "chrome" => Ok(TraceFormat::Chrome),
        other => Err(ParseError(format!(
            "unknown trace format '{other}' (jsonl|chrome)"
        ))),
    }
}

fn parse_encoding(s: &str) -> Result<Encoding, ParseError> {
    Encoding::parse(s)
        .ok_or_else(|| ParseError(format!("unknown encoding '{s}' (raw|f32|f16|delta|rlz)")))
}

fn parse_transport(s: &str) -> Result<TransportKind, ParseError> {
    match s {
        "channel" => Ok(TransportKind::Channel),
        "tcp" => Ok(TransportKind::Tcp),
        "mux" => Ok(TransportKind::Mux),
        other => Err(ParseError(format!(
            "unknown transport '{other}' (channel|tcp|mux)"
        ))),
    }
}

/// Parses a duration like `5ms`, `250us`, `1.5s` — bare numbers are ms.
fn parse_duration(s: &str, flag: &str) -> Result<Duration, ParseError> {
    let (digits, scale) = if let Some(v) = s.strip_suffix("us") {
        (v, 1e-6)
    } else if let Some(v) = s.strip_suffix("ms") {
        (v, 1e-3)
    } else if let Some(v) = s.strip_suffix('s') {
        (v, 1.0)
    } else {
        (s, 1e-3)
    };
    let v: f64 = digits
        .parse()
        .map_err(|_| ParseError(format!("invalid duration '{s}' for {flag}")))?;
    let secs = v * scale;
    // The upper bound both keeps Duration::from_secs_f64 panic-free
    // (it rejects ~1.8e19 s and up) and catches absurd simulations.
    if !secs.is_finite() || !(0.0..=1e9).contains(&secs) {
        return Err(ParseError(format!("invalid duration '{s}' for {flag}")));
    }
    Ok(Duration::from_secs_f64(secs))
}

/// Parses a byte rate like `1000000`, `500k`, `10M`, `1G` (bytes/sec).
fn parse_bandwidth(s: &str) -> Result<f64, ParseError> {
    let (digits, scale) = match s.chars().last() {
        Some('k') => (&s[..s.len() - 1], 1e3),
        Some('M') => (&s[..s.len() - 1], 1e6),
        Some('G') => (&s[..s.len() - 1], 1e9),
        _ => (s, 1.0),
    };
    let v: f64 = digits
        .parse()
        .map_err(|_| ParseError(format!("invalid rate '{s}' for --bandwidth")))?;
    if !v.is_finite() || v <= 0.0 {
        return Err(ParseError(format!(
            "--bandwidth must be a positive bytes/sec rate, got '{s}'"
        )));
    }
    Ok(v * scale)
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, ParseError> {
    s.parse()
        .map_err(|_| ParseError(format!("invalid value '{s}' for {flag}")))
}

fn parse_float(s: &str, flag: &str) -> Result<f64, ParseError> {
    let v: f64 = s
        .parse()
        .map_err(|_| ParseError(format!("invalid value '{s}' for {flag}")))?;
    if !v.is_finite() {
        return Err(ParseError(format!("non-finite value for {flag}")));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_full_invocation() {
        let o = parse_args(&sv(&[
            "median", "--k", "7", "--t", "12", "--sites", "3", "--eps", "0.5", "--seed", "9",
            "--json", "data.csv",
        ]))
        .unwrap();
        assert_eq!(o.command, Command::Median);
        assert_eq!((o.k, o.t, o.sites, o.seed), (7, 12, 3, 9));
        assert_eq!(o.eps, 0.5);
        assert!(o.json);
        assert_eq!(o.input, "data.csv");
    }

    #[test]
    fn defaults_applied() {
        let o = parse_args(&sv(&["center", "x.csv"])).unwrap();
        assert_eq!(o.command, Command::Center);
        assert_eq!((o.k, o.t, o.sites), (5, 0, 4));
        assert!(!o.one_round && !o.json);
        assert_eq!(o.sweep, None);
    }

    #[test]
    fn rejects_unknown_command_and_flags() {
        assert!(parse_args(&sv(&["fit", "x.csv"])).is_err());
        assert!(parse_args(&sv(&["median", "--bogus", "x.csv"])).is_err());
        assert!(parse_args(&sv(&["median", "--k"])).is_err());
        assert!(parse_args(&sv(&["median"])).is_err());
        assert!(parse_args(&sv(&["median", "--k", "0", "x.csv"])).is_err());
        assert!(parse_args(&sv(&["median", "a.csv", "b.csv"])).is_err());
    }

    #[test]
    fn help_returns_usage() {
        let err = parse_args(&sv(&["--help"])).unwrap_err();
        assert!(err.0.contains("usage"));
    }

    #[test]
    fn stream_flags() {
        let o = parse_args(&sv(&[
            "stream",
            "--k",
            "3",
            "--t",
            "8",
            "--block",
            "64",
            "--window",
            "512",
            "--objective",
            "means",
            "s.csv",
        ]))
        .unwrap();
        assert_eq!(o.command, Command::Stream);
        assert_eq!((o.block, o.window, o.sync_every), (64, 512, 0));
        assert_eq!(o.objective, StreamObjective::Means);
        // Defaults.
        let o = parse_args(&sv(&["stream", "s.csv"])).unwrap();
        assert_eq!((o.block, o.window, o.sync_every), (256, 0, 0));
        assert_eq!(o.objective, StreamObjective::Median);
    }

    #[test]
    fn stream_flag_validation() {
        // Window smaller than one block.
        assert!(parse_args(&sv(&["stream", "--block", "64", "--window", "32", "s.csv"])).is_err());
        // Window and continuous mode together.
        assert!(parse_args(&sv(&[
            "stream",
            "--window",
            "512",
            "--sync-every",
            "100",
            "s.csv"
        ]))
        .is_err());
        // Continuous center objective.
        assert!(parse_args(&sv(&[
            "stream",
            "--sync-every",
            "100",
            "--objective",
            "center",
            "s.csv"
        ]))
        .is_err());
        // Bad objective name.
        assert!(parse_args(&sv(&["stream", "--objective", "mode", "s.csv"])).is_err());
        assert!(parse_args(&sv(&["stream", "--block", "0", "s.csv"])).is_err());
    }

    #[test]
    fn transport_flags() {
        let o = parse_args(&sv(&[
            "median",
            "--transport",
            "tcp",
            "--latency",
            "5ms",
            "--bandwidth",
            "10M",
            "x.csv",
        ]))
        .unwrap();
        assert_eq!(o.transport, TransportKind::Tcp);
        assert_eq!(o.latency, Duration::from_millis(5));
        assert_eq!(o.bandwidth, 10e6);
        let o = parse_args(&sv(&["median", "--transport", "mux", "x.csv"])).unwrap();
        assert_eq!(o.transport, TransportKind::Mux);
        // Defaults.
        let o = parse_args(&sv(&["median", "x.csv"])).unwrap();
        assert_eq!(o.transport, TransportKind::Channel);
        assert_eq!(o.latency, Duration::ZERO);
        assert!(o.bandwidth.is_infinite());
        // Duration forms.
        let o = parse_args(&sv(&["median", "--latency", "250us", "x.csv"])).unwrap();
        assert_eq!(o.latency, Duration::from_micros(250));
        let o = parse_args(&sv(&["median", "--latency", "2", "x.csv"])).unwrap();
        assert_eq!(o.latency, Duration::from_millis(2));
        let o = parse_args(&sv(&["median", "--latency", "1.5s", "x.csv"])).unwrap();
        assert_eq!(o.latency, Duration::from_secs_f64(1.5));
        // Bandwidth suffixes.
        let o = parse_args(&sv(&["median", "--bandwidth", "500k", "x.csv"])).unwrap();
        assert_eq!(o.bandwidth, 5e5);
        // Rejections.
        assert!(parse_args(&sv(&["median", "--transport", "udp", "x.csv"])).is_err());
        assert!(parse_args(&sv(&["median", "--latency", "-1ms", "x.csv"])).is_err());
        // Durations beyond Duration::from_secs_f64's range must be a
        // ParseError, not a panic.
        assert!(parse_args(&sv(&["median", "--latency", "1e20s", "x.csv"])).is_err());
        assert!(parse_args(&sv(&["median", "--bandwidth", "0", "x.csv"])).is_err());
        assert!(parse_args(&sv(&["median", "--bandwidth", "fast", "x.csv"])).is_err());
    }

    #[test]
    fn fault_flags() {
        let o = parse_args(&sv(&[
            "median",
            "--dropout",
            "0.1",
            "--fault-seed",
            "7",
            "--timeout",
            "50ms",
            "--retries",
            "3",
            "x.csv",
        ]))
        .unwrap();
        assert_eq!(o.dropout, 0.1);
        assert_eq!(o.fault_seed, 7);
        assert_eq!(o.timeout, Some(Duration::from_millis(50)));
        assert_eq!(o.retries, 3);
        // Defaults: no faults.
        let o = parse_args(&sv(&["median", "x.csv"])).unwrap();
        assert_eq!((o.dropout, o.fault_seed, o.retries), (0.0, 0, 0));
        assert_eq!(o.timeout, None);
        // Rejections.
        assert!(parse_args(&sv(&["median", "--dropout", "1.0", "x.csv"])).is_err());
        assert!(parse_args(&sv(&["median", "--dropout", "-0.1", "x.csv"])).is_err());
        assert!(parse_args(&sv(&["median", "--timeout", "soon", "x.csv"])).is_err());
    }

    #[test]
    fn observability_flags() {
        let o = parse_args(&sv(&[
            "median",
            "--trace",
            "run.jsonl",
            "--trace-format",
            "chrome",
            "--metrics",
            "x.csv",
        ]))
        .unwrap();
        assert_eq!(o.trace.as_deref(), Some("run.jsonl"));
        assert_eq!(o.trace_format, Some(TraceFormat::Chrome));
        assert!(o.metrics);
        // Defaults: everything off, format unset (not merely jsonl).
        let o = parse_args(&sv(&["median", "x.csv"])).unwrap();
        assert_eq!(o.trace, None);
        assert_eq!(o.trace_format, None);
        assert!(!o.metrics);
        let o = parse_args(&sv(&["median", "--trace-format", "jsonl", "x.csv"])).unwrap();
        assert_eq!(o.trace_format, Some(TraceFormat::Jsonl));
        // Rejections.
        assert!(parse_args(&sv(&["median", "--trace-format", "xml", "x.csv"])).is_err());
        assert!(parse_args(&sv(&["median", "--trace", "x.csv"])).is_err());
    }

    #[test]
    fn sweep_parses_comma_lists() {
        let o = parse_args(&sv(&[
            "sweep",
            "median",
            "--k",
            "2,4",
            "--t",
            "1,8",
            "--transport",
            "channel,tcp,mux",
            "--sites",
            "3",
            "--parallelism",
            "2",
            "--seed",
            "9",
            "grid.csv",
        ]))
        .unwrap();
        assert_eq!(o.command, Command::Sweep);
        assert_eq!(o.input, "grid.csv");
        assert_eq!(o.seed, 9);
        let s = o.sweep.unwrap();
        assert_eq!(s.protocol, Command::Median);
        assert_eq!(s.k, vec![2, 4]);
        assert_eq!(s.t, vec![1, 8]);
        assert_eq!(s.sites, vec![3]);
        assert_eq!(
            s.transports,
            vec![
                TransportKind::Channel,
                TransportKind::Tcp,
                TransportKind::Mux
            ]
        );
        assert_eq!(s.parallelism, 2);
    }

    #[test]
    fn sweep_defaults_and_rejections() {
        let o = parse_args(&sv(&["sweep", "center", "x.csv"])).unwrap();
        let s = o.sweep.unwrap();
        assert_eq!(s.protocol, Command::Center);
        assert_eq!((s.k.as_slice(), s.t.as_slice()), (&[5][..], &[0][..]));
        assert_eq!(s.parallelism, 0);
        // Needs a protocol, and a sweepable one.
        assert!(parse_args(&sv(&["sweep"])).is_err());
        assert!(parse_args(&sv(&["sweep", "stream", "x.csv"])).is_err());
        assert!(parse_args(&sv(&["sweep", "uncertain-median", "x.csv"])).is_err());
        // Bad list element.
        assert!(parse_args(&sv(&["sweep", "median", "--k", "2,x", "a.csv"])).is_err());
        // Missing input.
        assert!(parse_args(&sv(&["sweep", "median", "--k", "2"])).is_err());
        assert!(parse_args(&sv(&["sweep", "median", "--parallelism", "0", "a.csv"])).is_err());
    }

    #[test]
    fn encoding_flags() {
        let o = parse_args(&sv(&["median", "--encoding", "f16", "x.csv"])).unwrap();
        assert_eq!(o.encoding, Encoding::F16);
        // Default: raw, exactly the pre-codec wire.
        let o = parse_args(&sv(&["median", "x.csv"])).unwrap();
        assert_eq!(o.encoding, Encoding::Raw);
        // Stream continuous mode takes it too.
        let o = parse_args(&sv(&[
            "stream",
            "--sync-every",
            "100",
            "--encoding",
            "rlz",
            "s.csv",
        ]))
        .unwrap();
        assert_eq!(o.encoding, Encoding::Rlz);
        // Sweep axis: comma list.
        let o = parse_args(&sv(&[
            "sweep",
            "median",
            "--encoding",
            "raw,f32,delta",
            "grid.csv",
        ]))
        .unwrap();
        let s = o.sweep.unwrap();
        assert_eq!(
            s.encodings,
            vec![Encoding::Raw, Encoding::F32, Encoding::Delta]
        );
        // Default sweep axis is raw only.
        let o = parse_args(&sv(&["sweep", "median", "grid.csv"])).unwrap();
        assert_eq!(o.sweep.unwrap().encodings, vec![Encoding::Raw]);
        // Rejections.
        assert!(parse_args(&sv(&["median", "--encoding", "gzip", "x.csv"])).is_err());
        assert!(parse_args(&sv(&["sweep", "median", "--encoding", "raw,zip", "g.csv"])).is_err());
    }

    #[test]
    fn threads_flag() {
        let o = parse_args(&sv(&["median", "--threads", "4", "x.csv"])).unwrap();
        assert_eq!(o.threads, 4);
        let o = parse_args(&sv(&["median", "x.csv"])).unwrap();
        assert_eq!(o.threads, 1);
        assert!(parse_args(&sv(&["median", "--threads", "0", "x.csv"])).is_err());
        let o = parse_args(&sv(&["sweep", "median", "--threads", "2", "x.csv"])).unwrap();
        assert_eq!(o.threads, 2);
    }

    #[test]
    fn blobs_spec_is_a_valid_input_argument() {
        let o = parse_args(&sv(&["median", "--k", "3", "blobs:n=100,dim=8"])).unwrap();
        assert_eq!(o.input, "blobs:n=100,dim=8");
    }

    #[test]
    fn one_round_and_delta() {
        let o = parse_args(&sv(&["center", "--one-round", "x.csv"])).unwrap();
        assert!(o.one_round);
        let o = parse_args(&sv(&["median", "--delta", "0.25", "x.csv"])).unwrap();
        assert_eq!(o.delta, 0.25);
        assert!(parse_args(&sv(&["median", "--delta", "-1", "x.csv"])).is_err());
    }
}
