//! Orchestration: load data, run the selected protocol, build a report.

use crate::args::{Command, Options, StreamObjective};
use crate::csv::{for_each_point_row, read_points_csv, read_uncertain_csv};
use dpc::coordinator::CommStats;
use dpc::prelude::*;
use std::io::BufRead;
use std::time::Instant;

/// Per-round communication/compute breakdown (from
/// [`dpc::coordinator::CommStats`]), surfaced in reports.
#[derive(Clone, Debug, PartialEq)]
pub struct RoundReport {
    /// Bytes from sites to the coordinator.
    pub bytes_up: usize,
    /// Bytes from the coordinator to sites.
    pub bytes_down: usize,
    /// Slowest site compute this round, milliseconds.
    pub max_site_ms: f64,
    /// Coordinator compute planning this round's messages, ms.
    pub coordinator_ms: f64,
    /// Simulated network time of this round under `--latency` /
    /// `--bandwidth`, ms (0 on the ideal link).
    pub network_ms: f64,
}

/// Flattens protocol accounting into report rows.
fn round_reports(stats: &CommStats) -> Vec<RoundReport> {
    stats
        .rounds
        .iter()
        .map(|r| RoundReport {
            bytes_up: r.sites_to_coordinator.iter().sum(),
            bytes_down: r.coordinator_to_sites.iter().sum(),
            max_site_ms: r.max_site_compute().as_secs_f64() * 1e3,
            coordinator_ms: r.coordinator_compute.as_secs_f64() * 1e3,
            network_ms: r.network.as_secs_f64() * 1e3,
        })
        .collect()
}

/// Runtime options derived from the CLI transport/link flags.
fn run_options(opts: &Options) -> RunOptions {
    RunOptions::new()
        .transport(opts.transport)
        .link(LinkModel::new(opts.latency, opts.bandwidth))
}

/// Report skeleton for a protocol execution: the communication and
/// runtime fields filled from `stats`, solution fields left to the
/// caller. `transport` reports the *configured* backend (a single-site
/// channel run degrades to the inline transport internally).
fn protocol_report(opts: &Options, n: usize, stats: &CommStats) -> Report {
    Report {
        bytes: stats.total_bytes(),
        rounds: stats.num_rounds(),
        round_stats: round_reports(stats),
        transport: Some(opts.transport.name()),
        network_ms: stats.network_time().as_secs_f64() * 1e3,
        ..base_report(opts.command, n)
    }
}

/// The result of a CLI run, renderable as text or JSON.
#[derive(Clone, Debug)]
pub struct Report {
    /// Which protocol ran.
    pub command: Command,
    /// Chosen centers (coordinates).
    pub centers: Vec<Vec<f64>>,
    /// Objective value over retained points at the output budget.
    pub cost: f64,
    /// Exclusion budget used in the final evaluation.
    pub budget: usize,
    /// Total bytes on the simulated wire (0 for centralized commands).
    pub bytes: usize,
    /// Protocol rounds (0 for centralized commands; summed over syncs in
    /// continuous streaming mode).
    pub rounds: usize,
    /// Input size.
    pub n: usize,
    /// Per-round breakdown of every executed protocol round, in order.
    pub round_stats: Vec<RoundReport>,
    /// `stream`: live summary entries at the end of the run.
    pub live_points: Option<usize>,
    /// `stream`: ingest+solve throughput in points per second.
    pub points_per_sec: Option<f64>,
    /// `stream` continuous mode: number of syncs executed.
    pub syncs: Option<usize>,
    /// Transport backend the protocol ran on (`None` for centralized
    /// commands, which move no messages).
    pub transport: Option<&'static str>,
    /// Total simulated network time under the configured link model, ms.
    pub network_ms: f64,
}

impl Report {
    /// Plain-text rendering.
    pub fn text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:?}: n={}, cost={:.6} (budget {}), comm={}B over {} rounds\n",
            self.command, self.n, self.cost, self.budget, self.bytes, self.rounds
        ));
        if let Some(t) = self.transport {
            out.push_str(&format!(
                "transport: {t}, simulated network {:.3}ms\n",
                self.network_ms
            ));
        }
        if let Some(lp) = self.live_points {
            out.push_str(&format!("live summary points: {lp}\n"));
        }
        if let Some(pps) = self.points_per_sec {
            out.push_str(&format!("throughput: {pps:.0} points/sec\n"));
        }
        if let Some(s) = self.syncs {
            out.push_str(&format!("syncs: {s}\n"));
        }
        for (i, r) in self.round_stats.iter().enumerate() {
            out.push_str(&format!(
                "round {i}: up={}B down={}B site={:.3}ms coord={:.3}ms net={:.3}ms\n",
                r.bytes_up, r.bytes_down, r.max_site_ms, r.coordinator_ms, r.network_ms
            ));
        }
        out.push_str("centers:\n");
        for c in &self.centers {
            let coords: Vec<String> = c.iter().map(|v| format!("{v}")).collect();
            out.push_str(&format!("  [{}]\n", coords.join(", ")));
        }
        out
    }

    /// JSON rendering (hand-built; values are plain numbers/arrays).
    pub fn json(&self) -> String {
        let centers: Vec<String> = self
            .centers
            .iter()
            .map(|c| {
                let coords: Vec<String> = c.iter().map(|v| format!("{v}")).collect();
                format!("[{}]", coords.join(","))
            })
            .collect();
        let rounds: Vec<String> = self
            .round_stats
            .iter()
            .enumerate()
            .map(|(i, r)| {
                format!(
                    "{{\"round\":{},\"bytes_up\":{},\"bytes_down\":{},\"max_site_ms\":{},\"coordinator_ms\":{},\"network_ms\":{}}}",
                    i, r.bytes_up, r.bytes_down, r.max_site_ms, r.coordinator_ms, r.network_ms
                )
            })
            .collect();
        let mut extra = String::new();
        if let Some(t) = self.transport {
            extra.push_str(&format!(
                ",\"transport\":\"{t}\",\"network_ms\":{}",
                self.network_ms
            ));
        }
        if let Some(lp) = self.live_points {
            extra.push_str(&format!(",\"live_points\":{lp}"));
        }
        if let Some(pps) = self.points_per_sec {
            extra.push_str(&format!(",\"points_per_sec\":{pps}"));
        }
        if let Some(s) = self.syncs {
            extra.push_str(&format!(",\"syncs\":{s}"));
        }
        format!(
            "{{\"command\":\"{:?}\",\"n\":{},\"cost\":{},\"budget\":{},\"bytes\":{},\"rounds\":{},\"round_stats\":[{}]{},\"centers\":[{}]}}",
            self.command,
            self.n,
            self.cost,
            self.budget,
            self.bytes,
            self.rounds,
            rounds.join(","),
            extra,
            centers.join(",")
        )
    }
}

fn centers_to_rows(ps: &PointSet) -> Vec<Vec<f64>> {
    (0..ps.len()).map(|i| ps.point(i).to_vec()).collect()
}

/// A protocol-free report skeleton.
fn base_report(command: Command, n: usize) -> Report {
    Report {
        command,
        centers: Vec::new(),
        cost: 0.0,
        budget: 0,
        bytes: 0,
        rounds: 0,
        n,
        round_stats: Vec::new(),
        live_points: None,
        points_per_sec: None,
        syncs: None,
        transport: None,
        network_ms: 0.0,
    }
}

/// Executes the parsed invocation, reading CSV rows from `input`.
pub fn execute<R: BufRead>(opts: &Options, input: R) -> Result<Report, String> {
    match opts.command {
        Command::Stream => execute_stream(opts, input),
        Command::Median | Command::Means | Command::Center | Command::Subquadratic => {
            let points = read_points_csv(input).map_err(|e| e.to_string())?;
            let n = points.len();
            if n < opts.k {
                return Err(format!("k={} exceeds the {} input points", opts.k, n));
            }
            match opts.command {
                Command::Subquadratic => {
                    let sol = subquadratic_median(
                        &points,
                        opts.k,
                        opts.t,
                        SubquadraticParams {
                            eps: opts.eps,
                            ..Default::default()
                        },
                    );
                    Ok(Report {
                        centers: centers_to_rows(&sol.centers),
                        cost: sol.cost,
                        budget: sol.excluded,
                        ..base_report(opts.command, n)
                    })
                }
                Command::Center => {
                    let shards = partition(
                        &points,
                        opts.sites,
                        PartitionStrategy::Random,
                        &[],
                        opts.seed,
                    );
                    let cfg = CenterConfig::new(opts.k, opts.t);
                    let out = if opts.one_round {
                        run_one_round_center(&shards, cfg, run_options(opts))
                    } else {
                        run_distributed_center(&shards, cfg, run_options(opts))
                    };
                    let (cost, budget) = evaluate_on_full_data(
                        &shards,
                        &out.output.centers,
                        opts.t,
                        Objective::Center,
                    );
                    Ok(Report {
                        centers: centers_to_rows(&out.output.centers),
                        cost,
                        budget,
                        ..protocol_report(opts, n, &out.stats)
                    })
                }
                _ => {
                    let shards = partition(
                        &points,
                        opts.sites,
                        PartitionStrategy::Random,
                        &[],
                        opts.seed,
                    );
                    let mut cfg = MedianConfig::new(opts.k, opts.t);
                    cfg.eps = opts.eps;
                    if opts.command == Command::Means {
                        cfg = cfg.means();
                    }
                    if opts.delta > 0.0 {
                        cfg = cfg.counts_only(opts.delta);
                    }
                    let out = if opts.one_round {
                        run_one_round_median(&shards, cfg, run_options(opts))
                    } else {
                        run_distributed_median(&shards, cfg, run_options(opts))
                    };
                    let objective = if opts.command == Command::Means {
                        Objective::Means
                    } else {
                        Objective::Median
                    };
                    let factor = if opts.delta > 0.0 {
                        2.0 + opts.eps + opts.delta
                    } else {
                        1.0 + opts.eps
                    };
                    let budget = (factor * opts.t as f64).floor() as usize;
                    let (cost, budget) =
                        evaluate_on_full_data(&shards, &out.output.centers, budget, objective);
                    Ok(Report {
                        centers: centers_to_rows(&out.output.centers),
                        cost,
                        budget,
                        ..protocol_report(opts, n, &out.stats)
                    })
                }
            }
        }
        Command::UncertainMedian => {
            let nodes = read_uncertain_csv(input).map_err(|e| e.to_string())?;
            let n = nodes.len();
            if n < opts.k {
                return Err(format!("k={} exceeds the {} input nodes", opts.k, n));
            }
            // Split nodes round-robin across the simulated sites.
            let mut shards: Vec<NodeSet> = (0..opts.sites)
                .map(|_| NodeSet::new(nodes.ground.dim()))
                .collect();
            for (i, node) in nodes.nodes.iter().enumerate() {
                let shard = &mut shards[i % opts.sites];
                let mut support = Vec::with_capacity(node.support.len());
                for &sp in &node.support {
                    support.push(shard.ground.push(nodes.ground.point(sp)));
                }
                shard
                    .nodes
                    .push(UncertainNode::new(support, node.probs.clone()));
            }
            let mut cfg = UncertainConfig::new(opts.k, opts.t);
            cfg.eps = opts.eps;
            let out = run_uncertain_median(&shards, cfg, run_options(opts));
            let budget = ((1.0 + opts.eps) * opts.t as f64).floor() as usize;
            let cost = estimate_expected_cost(&shards, &out.output.centers, budget, false, false);
            Ok(Report {
                centers: centers_to_rows(&out.output.centers),
                cost,
                budget,
                ..protocol_report(opts, n, &out.stats)
            })
        }
    }
}

/// The three streaming modes behind the `stream` subcommand.
enum StreamMode {
    Engine(StreamEngine),
    Window(SlidingWindowEngine),
    Continuous(ContinuousCluster),
}

/// Runs the `stream` subcommand: rows are fed to the engine in arrival
/// order as they are parsed — the full input is never materialized.
fn execute_stream<R: BufRead>(opts: &Options, input: R) -> Result<Report, String> {
    let mut cfg = StreamConfig::new(opts.k, opts.t)
        .block(opts.block)
        .eps(opts.eps);
    cfg = match opts.objective {
        StreamObjective::Median => cfg,
        StreamObjective::Means => cfg.means(),
        StreamObjective::Center => cfg.center(),
    };
    let started = Instant::now();
    let mut mode: Option<StreamMode> = None;
    let mut row_idx = 0usize;
    let rows = for_each_point_row(input, |coords| {
        let m = mode.get_or_insert_with(|| {
            let dim = coords.len();
            if opts.sync_every > 0 {
                let ccfg = ContinuousConfig {
                    stream: cfg,
                    eps: opts.eps,
                    // Like the batch commands, the CLI runs realistic
                    // concurrent sites (the library default is sequential
                    // for deterministic tests).
                    parallel: true,
                    ..ContinuousConfig::new(opts.k, opts.t)
                }
                .sync_every(opts.sync_every)
                .transport(opts.transport)
                .link(LinkModel::new(opts.latency, opts.bandwidth));
                StreamMode::Continuous(ContinuousCluster::new(dim, opts.sites, ccfg))
            } else if opts.window > 0 {
                StreamMode::Window(SlidingWindowEngine::new(dim, opts.window, cfg))
            } else {
                StreamMode::Engine(StreamEngine::new(dim, cfg))
            }
        });
        match m {
            StreamMode::Engine(e) => e.push(coords),
            StreamMode::Window(e) => e.push(coords),
            StreamMode::Continuous(c) => {
                c.ingest(row_idx % opts.sites, coords);
            }
        }
        row_idx += 1;
        Ok(())
    })
    .map_err(|e| e.to_string())?;
    let Some(mode) = mode else {
        return Err("no data rows".into());
    };
    if rows < opts.k {
        return Err(format!("k={} exceeds the {} input points", opts.k, rows));
    }
    let budget = ((1.0 + opts.eps) * opts.t as f64).floor() as usize;
    let mut report = match mode {
        StreamMode::Engine(mut e) => {
            e.flush();
            let sol = e.solve();
            Report {
                centers: centers_to_rows(&sol.centers),
                cost: sol.cost,
                budget,
                live_points: Some(sol.live_points),
                ..base_report(opts.command, rows)
            }
        }
        StreamMode::Window(e) => {
            let sol = e.solve();
            Report {
                centers: centers_to_rows(&sol.centers),
                cost: sol.cost,
                budget,
                live_points: Some(sol.live_points),
                ..base_report(opts.command, rows)
            }
        }
        StreamMode::Continuous(mut c) => {
            // Finish on a sync covering every ingested point (skipped when
            // the cadence already fired on the last one).
            c.sync_if_stale();
            let mut round_stats = Vec::new();
            for rec in &c.history {
                round_stats.extend(round_reports(&rec.stats));
            }
            let rec = c.latest().expect("sync just ran");
            Report {
                centers: centers_to_rows(&rec.centers),
                cost: rec.cost,
                budget,
                bytes: c.total_comm_bytes(),
                rounds: c.history.iter().map(|r| r.stats.num_rounds()).sum(),
                round_stats,
                live_points: Some(c.live_points()),
                syncs: Some(c.history.len()),
                transport: Some(opts.transport.name()),
                network_ms: c
                    .history
                    .iter()
                    .map(|r| r.stats.network_time().as_secs_f64() * 1e3)
                    .sum(),
                ..base_report(opts.command, rows)
            }
        }
    };
    report.points_per_sec = Some(rows as f64 / started.elapsed().as_secs_f64().max(1e-9));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;

    fn opts(parts: &[&str]) -> Options {
        let v: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
        parse_args(&v).unwrap()
    }

    fn toy_csv() -> String {
        let mut s = String::from("x,y\n");
        for i in 0..20 {
            s.push_str(&format!("{},0\n", (i % 5) as f64 * 0.1));
        }
        for i in 0..20 {
            s.push_str(&format!("{},0\n", 100.0 + (i % 5) as f64 * 0.1));
        }
        s.push_str("5000,5000\n");
        s
    }

    /// A longer two-cluster stream with a couple of planted outliers.
    fn stream_csv(n: usize) -> String {
        let mut s = String::from("x,y\n");
        for i in 0..n {
            let c = if i % 2 == 0 { 0.0 } else { 300.0 };
            s.push_str(&format!("{},0\n", c + 0.1 * (i % 5) as f64));
        }
        s.push_str("90000,90000\n-80000,0\n");
        s
    }

    #[test]
    fn median_end_to_end() {
        let o = opts(&["median", "--k", "2", "--t", "1", "--sites", "3", "in.csv"]);
        let r = execute(&o, toy_csv().as_bytes()).unwrap();
        assert_eq!(r.n, 41);
        assert!(r.cost < 20.0, "cost {}", r.cost);
        assert_eq!(r.rounds, 2);
        assert!(r.bytes > 0);
        assert_eq!(r.centers.len(), 2);
        // Per-round breakdown matches the aggregate.
        assert_eq!(r.round_stats.len(), 2);
        let up: usize = r.round_stats.iter().map(|x| x.bytes_up).sum();
        let down: usize = r.round_stats.iter().map(|x| x.bytes_down).sum();
        assert_eq!(up + down, r.bytes);
    }

    #[test]
    fn center_one_round_end_to_end() {
        let o = opts(&["center", "--k", "2", "--t", "1", "--one-round", "in.csv"]);
        let r = execute(&o, toy_csv().as_bytes()).unwrap();
        assert_eq!(r.rounds, 1);
        assert!(r.cost < 5.0, "cost {}", r.cost);
        assert!(!r.round_stats.is_empty());
    }

    #[test]
    fn subquadratic_end_to_end() {
        let o = opts(&["subquadratic", "--k", "2", "--t", "1", "in.csv"]);
        let r = execute(&o, toy_csv().as_bytes()).unwrap();
        assert_eq!(r.bytes, 0);
        assert!(r.round_stats.is_empty());
        assert!(r.cost < 20.0);
    }

    #[test]
    fn stream_end_to_end() {
        let o = opts(&["stream", "--k", "2", "--t", "2", "--block", "64", "in.csv"]);
        let r = execute(&o, stream_csv(500).as_bytes()).unwrap();
        assert_eq!(r.n, 502);
        assert_eq!(r.centers.len(), 2);
        assert!(r.cost < 100.0, "cost {}", r.cost);
        let lp = r.live_points.unwrap();
        assert!(lp > 0 && lp < 502, "live points {lp}");
        assert!(r.points_per_sec.unwrap() > 0.0);
        assert_eq!(r.bytes, 0); // no protocol ran
    }

    #[test]
    fn stream_window_end_to_end() {
        let o = opts(&[
            "stream", "--k", "2", "--t", "2", "--block", "32", "--window", "128", "in.csv",
        ]);
        let r = execute(&o, stream_csv(600).as_bytes()).unwrap();
        assert_eq!(r.centers.len(), 2);
        assert!(r.live_points.unwrap() < 300);
    }

    #[test]
    fn stream_continuous_end_to_end() {
        let o = opts(&[
            "stream",
            "--k",
            "2",
            "--t",
            "2",
            "--block",
            "32",
            "--sync-every",
            "200",
            "--sites",
            "3",
            "in.csv",
        ]);
        let r = execute(&o, stream_csv(500).as_bytes()).unwrap();
        let syncs = r.syncs.unwrap();
        assert!(syncs >= 3, "expected periodic syncs, got {syncs}");
        assert_eq!(r.rounds, 2 * syncs);
        assert!(r.bytes > 0);
        assert_eq!(r.round_stats.len(), 2 * syncs);
        assert!(r.cost < 100.0, "cost {}", r.cost);
    }

    #[test]
    fn uncertain_end_to_end() {
        let mut csv = String::from("node,prob,x,y\n");
        for n in 0..12 {
            let c = if n % 2 == 0 { 0.0 } else { 80.0 };
            csv.push_str(&format!("{n},0.5,{},{}\n", c, 0.1 * n as f64));
            csv.push_str(&format!("{n},0.5,{},{}\n", c + 0.5, 0.1 * n as f64));
        }
        let o = opts(&[
            "uncertain-median",
            "--k",
            "2",
            "--t",
            "0",
            "--sites",
            "2",
            "in.csv",
        ]);
        let r = execute(&o, csv.as_bytes()).unwrap();
        assert_eq!(r.n, 12);
        assert!(r.cost < 30.0, "cost {}", r.cost);
    }

    #[test]
    fn errors_propagate() {
        let o = opts(&["median", "--k", "100", "in.csv"]);
        assert!(execute(&o, "1,1\n2,2\n".as_bytes()).is_err());
        let o = opts(&["median", "in.csv"]);
        assert!(execute(&o, "not,a,number\nstill,not,numbers\n".as_bytes()).is_err());
        let o = opts(&["stream", "--k", "5", "in.csv"]);
        assert!(execute(&o, "1,1\n2,2\n".as_bytes()).is_err()); // k > n
        assert!(execute(&o, "# empty\n".as_bytes()).is_err());
    }

    #[test]
    fn json_and_text_rendering() {
        let r = Report {
            command: Command::Median,
            centers: vec![vec![1.0, 2.0]],
            cost: 3.5,
            budget: 2,
            bytes: 100,
            rounds: 2,
            n: 10,
            round_stats: vec![RoundReport {
                bytes_up: 60,
                bytes_down: 40,
                max_site_ms: 1.5,
                coordinator_ms: 0.5,
                network_ms: 2.25,
            }],
            live_points: Some(7),
            points_per_sec: Some(1000.0),
            syncs: None,
            transport: Some("tcp"),
            network_ms: 2.25,
        };
        let j = r.json();
        assert!(j.contains("\"cost\":3.5") && j.contains("[1,2]"), "{j}");
        assert!(
            j.contains("\"round_stats\":[{\"round\":0,\"bytes_up\":60,\"bytes_down\":40"),
            "{j}"
        );
        assert!(
            j.contains("\"live_points\":7") && j.contains("\"points_per_sec\":1000"),
            "{j}"
        );
        assert!(
            j.contains("\"transport\":\"tcp\"") && j.contains("\"network_ms\":2.25"),
            "{j}"
        );
        assert!(!j.contains("syncs"), "{j}");
        let t = r.text();
        assert!(t.contains("cost=3.5") && t.contains("[1, 2]"), "{t}");
        assert!(t.contains("round 0: up=60B down=40B"), "{t}");
        assert!(t.contains("net=2.250ms"), "{t}");
        assert!(
            t.contains("transport: tcp, simulated network 2.250ms"),
            "{t}"
        );
        assert!(t.contains("live summary points: 7"), "{t}");
    }

    #[test]
    fn centralized_report_omits_transport() {
        let o = opts(&["subquadratic", "--k", "2", "--t", "1", "in.csv"]);
        let r = execute(&o, toy_csv().as_bytes()).unwrap();
        assert_eq!(r.transport, None);
        assert!(!r.json().contains("transport"));
        assert!(!r.text().contains("transport:"));
    }

    #[test]
    fn tcp_transport_end_to_end_matches_channel() {
        let base = opts(&["median", "--k", "2", "--t", "1", "--sites", "3", "in.csv"]);
        let tcp = opts(&[
            "median",
            "--k",
            "2",
            "--t",
            "1",
            "--sites",
            "3",
            "--transport",
            "tcp",
            "in.csv",
        ]);
        let a = execute(&base, toy_csv().as_bytes()).unwrap();
        let b = execute(&tcp, toy_csv().as_bytes()).unwrap();
        assert_eq!(a.transport, Some("channel"));
        assert_eq!(b.transport, Some("tcp"));
        // Same bytes on the wire, same answer, regardless of backend.
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.centers, b.centers);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn link_model_surfaces_in_report() {
        let o = opts(&[
            "median",
            "--k",
            "2",
            "--t",
            "1",
            "--latency",
            "5ms",
            "--bandwidth",
            "1M",
            "in.csv",
        ]);
        let r = execute(&o, toy_csv().as_bytes()).unwrap();
        // 2 rounds × (down latency + up latency) = at least 20 ms.
        assert!(r.network_ms >= 20.0, "network_ms {}", r.network_ms);
        let per_round: f64 = r.round_stats.iter().map(|x| x.network_ms).sum();
        assert!((per_round - r.network_ms).abs() < 1e-9);
    }
}
