//! Orchestration: load data, run the selected protocol, build a report.

use crate::args::{Command, Options};
use crate::csv::{parse_points_csv, parse_uncertain_csv};
use dpc::prelude::*;

/// The result of a CLI run, renderable as text or JSON.
#[derive(Clone, Debug)]
pub struct Report {
    /// Which protocol ran.
    pub command: Command,
    /// Chosen centers (coordinates).
    pub centers: Vec<Vec<f64>>,
    /// Objective value over retained points at the output budget.
    pub cost: f64,
    /// Exclusion budget used in the final evaluation.
    pub budget: usize,
    /// Total bytes on the simulated wire (0 for centralized commands).
    pub bytes: usize,
    /// Protocol rounds (0 for centralized commands).
    pub rounds: usize,
    /// Input size.
    pub n: usize,
}

impl Report {
    /// Plain-text rendering.
    pub fn text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:?}: n={}, cost={:.6} (budget {}), comm={}B over {} rounds\ncenters:\n",
            self.command, self.n, self.cost, self.budget, self.bytes, self.rounds
        ));
        for c in &self.centers {
            let coords: Vec<String> = c.iter().map(|v| format!("{v}")).collect();
            out.push_str(&format!("  [{}]\n", coords.join(", ")));
        }
        out
    }

    /// JSON rendering (hand-built; values are plain numbers/arrays).
    pub fn json(&self) -> String {
        let centers: Vec<String> = self
            .centers
            .iter()
            .map(|c| {
                let coords: Vec<String> = c.iter().map(|v| format!("{v}")).collect();
                format!("[{}]", coords.join(","))
            })
            .collect();
        format!(
            "{{\"command\":\"{:?}\",\"n\":{},\"cost\":{},\"budget\":{},\"bytes\":{},\"rounds\":{},\"centers\":[{}]}}",
            self.command,
            self.n,
            self.cost,
            self.budget,
            self.bytes,
            self.rounds,
            centers.join(",")
        )
    }
}

fn centers_to_rows(ps: &PointSet) -> Vec<Vec<f64>> {
    (0..ps.len()).map(|i| ps.point(i).to_vec()).collect()
}

/// Executes the parsed invocation on CSV text.
pub fn execute(opts: &Options, csv_text: &str) -> Result<Report, String> {
    match opts.command {
        Command::Median | Command::Means | Command::Center | Command::Subquadratic => {
            let points = parse_points_csv(csv_text).map_err(|e| e.to_string())?;
            let n = points.len();
            if n < opts.k {
                return Err(format!("k={} exceeds the {} input points", opts.k, n));
            }
            match opts.command {
                Command::Subquadratic => {
                    let sol = subquadratic_median(
                        &points,
                        opts.k,
                        opts.t,
                        SubquadraticParams {
                            eps: opts.eps,
                            ..Default::default()
                        },
                    );
                    Ok(Report {
                        command: opts.command,
                        centers: centers_to_rows(&sol.centers),
                        cost: sol.cost,
                        budget: sol.excluded,
                        bytes: 0,
                        rounds: 0,
                        n,
                    })
                }
                Command::Center => {
                    let shards = partition(
                        &points,
                        opts.sites,
                        PartitionStrategy::Random,
                        &[],
                        opts.seed,
                    );
                    let cfg = CenterConfig::new(opts.k, opts.t);
                    let out = if opts.one_round {
                        run_one_round_center(&shards, cfg, RunOptions::default())
                    } else {
                        run_distributed_center(&shards, cfg, RunOptions::default())
                    };
                    let (cost, budget) = evaluate_on_full_data(
                        &shards,
                        &out.output.centers,
                        opts.t,
                        Objective::Center,
                    );
                    Ok(Report {
                        command: opts.command,
                        centers: centers_to_rows(&out.output.centers),
                        cost,
                        budget,
                        bytes: out.stats.total_bytes(),
                        rounds: out.stats.num_rounds(),
                        n,
                    })
                }
                _ => {
                    let shards = partition(
                        &points,
                        opts.sites,
                        PartitionStrategy::Random,
                        &[],
                        opts.seed,
                    );
                    let mut cfg = MedianConfig::new(opts.k, opts.t);
                    cfg.eps = opts.eps;
                    if opts.command == Command::Means {
                        cfg = cfg.means();
                    }
                    if opts.delta > 0.0 {
                        cfg = cfg.counts_only(opts.delta);
                    }
                    let out = if opts.one_round {
                        run_one_round_median(&shards, cfg, RunOptions::default())
                    } else {
                        run_distributed_median(&shards, cfg, RunOptions::default())
                    };
                    let objective = if opts.command == Command::Means {
                        Objective::Means
                    } else {
                        Objective::Median
                    };
                    let factor = if opts.delta > 0.0 {
                        2.0 + opts.eps + opts.delta
                    } else {
                        1.0 + opts.eps
                    };
                    let budget = (factor * opts.t as f64).floor() as usize;
                    let (cost, budget) =
                        evaluate_on_full_data(&shards, &out.output.centers, budget, objective);
                    Ok(Report {
                        command: opts.command,
                        centers: centers_to_rows(&out.output.centers),
                        cost,
                        budget,
                        bytes: out.stats.total_bytes(),
                        rounds: out.stats.num_rounds(),
                        n,
                    })
                }
            }
        }
        Command::UncertainMedian => {
            let nodes = parse_uncertain_csv(csv_text).map_err(|e| e.to_string())?;
            let n = nodes.len();
            if n < opts.k {
                return Err(format!("k={} exceeds the {} input nodes", opts.k, n));
            }
            // Split nodes round-robin across the simulated sites.
            let mut shards: Vec<NodeSet> = (0..opts.sites)
                .map(|_| NodeSet::new(nodes.ground.dim()))
                .collect();
            for (i, node) in nodes.nodes.iter().enumerate() {
                let shard = &mut shards[i % opts.sites];
                let mut support = Vec::with_capacity(node.support.len());
                for &sp in &node.support {
                    support.push(shard.ground.push(nodes.ground.point(sp)));
                }
                shard
                    .nodes
                    .push(UncertainNode::new(support, node.probs.clone()));
            }
            let mut cfg = UncertainConfig::new(opts.k, opts.t);
            cfg.eps = opts.eps;
            let out = run_uncertain_median(&shards, cfg, RunOptions::default());
            let budget = ((1.0 + opts.eps) * opts.t as f64).floor() as usize;
            let cost = estimate_expected_cost(&shards, &out.output.centers, budget, false, false);
            Ok(Report {
                command: opts.command,
                centers: centers_to_rows(&out.output.centers),
                cost,
                budget,
                bytes: out.stats.total_bytes(),
                rounds: out.stats.num_rounds(),
                n,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;

    fn opts(parts: &[&str]) -> Options {
        let v: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
        parse_args(&v).unwrap()
    }

    fn toy_csv() -> String {
        let mut s = String::from("x,y\n");
        for i in 0..20 {
            s.push_str(&format!("{},0\n", (i % 5) as f64 * 0.1));
        }
        for i in 0..20 {
            s.push_str(&format!("{},0\n", 100.0 + (i % 5) as f64 * 0.1));
        }
        s.push_str("5000,5000\n");
        s
    }

    #[test]
    fn median_end_to_end() {
        let o = opts(&["median", "--k", "2", "--t", "1", "--sites", "3", "in.csv"]);
        let r = execute(&o, &toy_csv()).unwrap();
        assert_eq!(r.n, 41);
        assert!(r.cost < 20.0, "cost {}", r.cost);
        assert_eq!(r.rounds, 2);
        assert!(r.bytes > 0);
        assert_eq!(r.centers.len(), 2);
    }

    #[test]
    fn center_one_round_end_to_end() {
        let o = opts(&["center", "--k", "2", "--t", "1", "--one-round", "in.csv"]);
        let r = execute(&o, &toy_csv()).unwrap();
        assert_eq!(r.rounds, 1);
        assert!(r.cost < 5.0, "cost {}", r.cost);
    }

    #[test]
    fn subquadratic_end_to_end() {
        let o = opts(&["subquadratic", "--k", "2", "--t", "1", "in.csv"]);
        let r = execute(&o, &toy_csv()).unwrap();
        assert_eq!(r.bytes, 0);
        assert!(r.cost < 20.0);
    }

    #[test]
    fn uncertain_end_to_end() {
        let mut csv = String::from("node,prob,x,y\n");
        for n in 0..12 {
            let c = if n % 2 == 0 { 0.0 } else { 80.0 };
            csv.push_str(&format!("{n},0.5,{},{}\n", c, 0.1 * n as f64));
            csv.push_str(&format!("{n},0.5,{},{}\n", c + 0.5, 0.1 * n as f64));
        }
        let o = opts(&[
            "uncertain-median",
            "--k",
            "2",
            "--t",
            "0",
            "--sites",
            "2",
            "in.csv",
        ]);
        let r = execute(&o, &csv).unwrap();
        assert_eq!(r.n, 12);
        assert!(r.cost < 30.0, "cost {}", r.cost);
    }

    #[test]
    fn errors_propagate() {
        let o = opts(&["median", "--k", "100", "in.csv"]);
        assert!(execute(&o, "1,1\n2,2\n").is_err());
        let o = opts(&["median", "in.csv"]);
        assert!(execute(&o, "not,a,number\nstill,not,numbers\n").is_err());
    }

    #[test]
    fn json_and_text_rendering() {
        let r = Report {
            command: Command::Median,
            centers: vec![vec![1.0, 2.0]],
            cost: 3.5,
            budget: 2,
            bytes: 100,
            rounds: 2,
            n: 10,
        };
        let j = r.json();
        assert!(j.contains("\"cost\":3.5") && j.contains("[1,2]"), "{j}");
        let t = r.text();
        assert!(t.contains("cost=3.5") && t.contains("[1, 2]"), "{t}");
    }
}
