//! Orchestration: a thin `Options -> dpc::api::Job` adapter.
//!
//! Everything protocol-shaped lives behind the typed API now: this module
//! only loads CSV rows, builds the matching [`Job`], and renders the
//! returned [`Artifact`] (text or the shared JSON schema). Configuration
//! smells are the API's typed diagnostics — [`preflight`] surfaces
//! [`ConfigWarning`]s before any data is read, and hard
//! `dpc::api::ConfigError`s (like `stream --eps 0`, formerly a warning)
//! abort the run.

use crate::args::{Command, Options, StreamObjective, SweepSpec};
use crate::csv::{for_each_point_row, read_points_csv, read_uncertain_csv};
use dpc::prelude::*;
use dpc::workloads::{gaussian_blobs, BlobsSpec};
use std::io::BufRead;

/// True when the invocation's input is a `blobs:` synthetic-workload spec
/// rather than a CSV path (no file is opened for it).
pub fn is_synthetic_input(input: &str) -> bool {
    input.starts_with("blobs:")
}

/// Parses a `blobs:` spec like
/// `blobs:n=50000,dim=32,clusters=8,imbalance=1.0,outliers=64,seed=7`.
fn parse_blobs_spec(input: &str) -> Result<BlobsSpec, String> {
    let body = input
        .strip_prefix("blobs:")
        .ok_or_else(|| "not a blobs: spec".to_string())?;
    let mut spec = BlobsSpec::default();
    for part in body.split(',').filter(|p| !p.is_empty()) {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| format!("blobs spec entry '{part}' is not key=value"))?;
        let num = |v: &str| -> Result<f64, String> {
            v.parse::<f64>()
                .map_err(|_| format!("invalid blobs value '{v}' for '{key}'"))
        };
        let int = |v: &str| -> Result<usize, String> {
            v.parse::<usize>()
                .map_err(|_| format!("invalid blobs value '{v}' for '{key}'"))
        };
        match key {
            "n" => spec.points = int(value)?,
            "dim" => spec.dim = int(value)?,
            "clusters" => spec.clusters = int(value)?,
            "outliers" => spec.outliers = int(value)?,
            "imbalance" => spec.imbalance = num(value)?,
            "sigma" => spec.sigma = num(value)?,
            "sep" => spec.separation = num(value)?,
            "seed" => spec.seed = int(value)? as u64,
            other => return Err(format!("unknown blobs key '{other}'")),
        }
    }
    if spec.points == 0 || spec.dim == 0 || spec.clusters == 0 {
        return Err("blobs spec needs positive n, dim, and clusters".into());
    }
    if !spec.imbalance.is_finite() || spec.imbalance < 0.0 {
        return Err("blobs imbalance must be finite and non-negative".into());
    }
    Ok(spec)
}

/// Loads the point input: a generated blob workload for `blobs:` specs,
/// otherwise CSV rows from the reader.
fn load_points<R: BufRead>(opts: &Options, input: R) -> Result<PointSet, String> {
    if is_synthetic_input(&opts.input) {
        Ok(gaussian_blobs(parse_blobs_spec(&opts.input)?).points)
    } else {
        read_points_csv(input).map_err(|e| e.to_string())
    }
}

fn objective_of(o: StreamObjective) -> Objective {
    match o {
        StreamObjective::Median => Objective::Median,
        StreamObjective::Means => Objective::Means,
        StreamObjective::Center => Objective::Center,
    }
}

/// Applies the shared CLI knobs (sites, seed, eps, transport, link, the
/// counts-only delta) to a job builder.
fn apply_common(opts: &Options, mut b: JobBuilder) -> JobBuilder {
    b = b
        .eps(opts.eps)
        .sites(opts.sites)
        .seed(opts.seed)
        .threads(opts.threads)
        .link(LinkModel::new(opts.latency, opts.bandwidth));
    // Only an explicit backend choice should count as "transport flags
    // set" for no-effect warnings; the link model tracks itself.
    if opts.transport != TransportKind::Channel {
        b = b.transport(opts.transport);
    }
    // Same convention for the wire codec: the default (raw) never
    // reaches the builder, so codec-free commands stay warning-free
    // unless the user actually asked for an encoding.
    if opts.encoding != Encoding::Raw {
        b = b.encoding(opts.encoding);
    }
    if opts.delta > 0.0 {
        b = b.delta(opts.delta);
    }
    // Fault-injection knobs follow the same convention: only explicit,
    // non-default values reach the builder, so protocol-free commands
    // keep a clean warning slate unless the user actually asked for
    // faults.
    if opts.dropout > 0.0 {
        b = b.dropout(opts.dropout);
    }
    if opts.fault_seed != 0 {
        b = b.fault_seed(opts.fault_seed);
    }
    if let Some(t) = opts.timeout {
        b = b.timeout(t);
    }
    if opts.retries > 0 {
        b = b.retries(opts.retries);
    }
    // Observability knobs: an explicit format with no path still reaches
    // the builder so the no-effect warning surfaces in preflight.
    if let Some(path) = &opts.trace {
        b = b.trace(path);
    }
    if let Some(format) = opts.trace_format {
        b = b.trace_format(format);
    }
    if opts.metrics {
        b = b.metrics(true);
    }
    b
}

/// The `Options -> Job` adapter: builds the (dataless) job an invocation
/// describes. Attach data and run via the API.
pub fn job_for(opts: &Options) -> JobBuilder {
    let b = match opts.command {
        Command::Median if opts.one_round => Job::one_round(Objective::Median, opts.k, opts.t),
        Command::Means if opts.one_round => Job::one_round(Objective::Means, opts.k, opts.t),
        Command::Center if opts.one_round => Job::one_round(Objective::Center, opts.k, opts.t),
        Command::Median => Job::median(opts.k, opts.t),
        Command::Means => Job::means(opts.k, opts.t),
        Command::Center => Job::center(opts.k, opts.t),
        Command::UncertainMedian => Job::uncertain_median(opts.k, opts.t),
        Command::Subquadratic => Job::subquadratic(opts.k, opts.t),
        Command::Stream if opts.sync_every > 0 => Job::continuous(opts.k, opts.t)
            .sync_every(opts.sync_every)
            .objective(objective_of(opts.objective))
            .block(opts.block),
        Command::Stream if opts.window > 0 => Job::stream(opts.k, opts.t)
            .window(opts.window)
            .objective(objective_of(opts.objective))
            .block(opts.block),
        Command::Stream => Job::stream(opts.k, opts.t)
            .objective(objective_of(opts.objective))
            .block(opts.block),
        Command::Sweep => {
            let spec = opts.sweep.as_ref().expect("sweep options carry a spec");
            let (k, t) = (spec.k[0], spec.t[0]);
            match (spec.protocol, opts.one_round) {
                (Command::Median, false) => Job::median(k, t),
                (Command::Means, false) => Job::means(k, t),
                (Command::Center, false) => Job::center(k, t),
                (Command::Median, true) => Job::one_round(Objective::Median, k, t),
                (Command::Means, true) => Job::one_round(Objective::Means, k, t),
                (Command::Center, true) => Job::one_round(Objective::Center, k, t),
                _ => unreachable!("parse restricts sweep protocols"),
            }
        }
    };
    apply_common(opts, b)
}

/// Builds the sweep grid an invocation describes (no data attached yet).
fn sweep_for(opts: &Options, base: JobBuilder) -> Sweep {
    let spec: &SweepSpec = opts.sweep.as_ref().expect("sweep options carry a spec");
    let mut sweep = Sweep::grid(base)
        .k(&spec.k)
        .t(&spec.t)
        .eps(&spec.eps)
        .sites(&spec.sites)
        .transports(&spec.transports)
        // Last axis varies fastest: each parameter point's encodings sit
        // on adjacent rows, reading directly as its bytes ⇄ quality
        // frontier.
        .encodings(&spec.encodings);
    if spec.parallelism > 0 {
        sweep = sweep.parallelism(spec.parallelism);
    }
    sweep
}

/// Validates the invocation before any data is read: hard errors abort,
/// structured no-effect warnings are returned for stderr.
pub fn preflight(opts: &Options) -> Result<Vec<ConfigWarning>, String> {
    match opts.command {
        Command::Sweep => {
            let jobs = sweep_for(opts, job_for(opts))
                .jobs()
                .map_err(|e| e.to_string())?;
            let mut warnings: Vec<ConfigWarning> = Vec::new();
            for job in &jobs {
                for w in job.warnings() {
                    if !warnings.contains(w) {
                        warnings.push(w.clone());
                    }
                }
            }
            Ok(warnings)
        }
        _ => job_for(opts)
            .validate()
            .map(|vj| vj.warnings().to_vec())
            .map_err(|e| e.to_string()),
    }
}

/// Executes the parsed invocation, reading CSV rows from `input`.
pub fn execute<R: BufRead>(opts: &Options, input: R) -> Result<Artifact, String> {
    match opts.command {
        Command::Sweep => Err("sweep invocations go through execute_sweep".into()),
        Command::Stream => execute_stream(opts, input),
        Command::UncertainMedian => {
            if is_synthetic_input(&opts.input) {
                return Err("blobs: input generates points; uncertain-median needs a CSV".into());
            }
            let nodes = read_uncertain_csv(input).map_err(|e| e.to_string())?;
            let job = job_for(opts).data(nodes);
            Ok(job.validate().map_err(|e| e.to_string())?.run())
        }
        _ => {
            let points = load_points(opts, input)?;
            let job = job_for(opts).points(points);
            Ok(job.validate().map_err(|e| e.to_string())?.run())
        }
    }
}

/// Executes a `dpc sweep` invocation: one artifact per grid cell.
pub fn execute_sweep<R: BufRead>(opts: &Options, input: R) -> Result<Vec<Artifact>, String> {
    let points = load_points(opts, input)?;
    let base = job_for(opts).points(points);
    sweep_for(opts, base).run().map_err(|e| e.to_string())
}

/// Runs the `stream` subcommand: rows are fed to the engine in arrival
/// order as they are parsed — the full input is never materialized.
fn execute_stream<R: BufRead>(opts: &Options, input: R) -> Result<Artifact, String> {
    let valid = job_for(opts).validate().map_err(|e| e.to_string())?;
    let mut session = valid.session();
    let rows = if is_synthetic_input(&opts.input) {
        let points = gaussian_blobs(parse_blobs_spec(&opts.input)?).points;
        for (_, p) in points.iter() {
            session.push(p);
        }
        points.len()
    } else {
        for_each_point_row(input, |coords| {
            session.push(coords);
            Ok(())
        })
        .map_err(|e| e.to_string())?
    };
    if rows == 0 {
        return Err("no data rows".into());
    }
    if rows < opts.k {
        return Err(format!("k={} exceeds the {} input points", opts.k, rows));
    }
    Ok(session.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;

    fn opts(parts: &[&str]) -> Options {
        let v: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
        parse_args(&v).unwrap()
    }

    fn toy_csv() -> String {
        let mut s = String::from("x,y\n");
        for i in 0..20 {
            s.push_str(&format!("{},0\n", (i % 5) as f64 * 0.1));
        }
        for i in 0..20 {
            s.push_str(&format!("{},0\n", 100.0 + (i % 5) as f64 * 0.1));
        }
        s.push_str("5000,5000\n");
        s
    }

    /// A longer two-cluster stream with a couple of planted outliers.
    fn stream_csv(n: usize) -> String {
        let mut s = String::from("x,y\n");
        for i in 0..n {
            let c = if i % 2 == 0 { 0.0 } else { 300.0 };
            s.push_str(&format!("{},0\n", c + 0.1 * (i % 5) as f64));
        }
        s.push_str("90000,90000\n-80000,0\n");
        s
    }

    #[test]
    fn median_end_to_end() {
        let o = opts(&["median", "--k", "2", "--t", "1", "--sites", "3", "in.csv"]);
        let r = execute(&o, toy_csv().as_bytes()).unwrap();
        assert_eq!(r.job, "median");
        assert_eq!(r.n, 41);
        assert!(r.cost < 20.0, "cost {}", r.cost);
        assert_eq!(r.rounds, 2);
        assert!(r.bytes > 0);
        assert_eq!(r.centers.len(), 2);
        // Per-round breakdown matches the aggregate.
        assert_eq!(r.round_stats.len(), 2);
        assert_eq!(r.upstream_bytes() + r.downstream_bytes(), r.bytes);
    }

    #[test]
    fn center_one_round_end_to_end() {
        let o = opts(&["center", "--k", "2", "--t", "1", "--one-round", "in.csv"]);
        let r = execute(&o, toy_csv().as_bytes()).unwrap();
        assert_eq!(r.job, "one-round-center");
        assert_eq!(r.rounds, 1);
        assert!(r.cost < 5.0, "cost {}", r.cost);
        assert!(!r.round_stats.is_empty());
    }

    #[test]
    fn subquadratic_end_to_end() {
        let o = opts(&["subquadratic", "--k", "2", "--t", "1", "in.csv"]);
        let r = execute(&o, toy_csv().as_bytes()).unwrap();
        assert_eq!(r.bytes, 0);
        assert!(r.round_stats.is_empty());
        assert!(r.cost < 20.0);
        assert_eq!(r.transport, None);
        assert!(!r.to_json().contains("transport"));
        assert!(!r.text().contains("transport:"));
    }

    #[test]
    fn stream_end_to_end() {
        let o = opts(&["stream", "--k", "2", "--t", "2", "--block", "64", "in.csv"]);
        let r = execute(&o, stream_csv(500).as_bytes()).unwrap();
        assert_eq!(r.n, 502);
        assert_eq!(r.centers.len(), 2);
        assert!(r.cost < 100.0, "cost {}", r.cost);
        let lp = r.live_points.unwrap();
        assert!(lp > 0 && lp < 502, "live points {lp}");
        assert!(r.points_per_sec.unwrap() > 0.0);
        assert_eq!(r.bytes, 0); // no protocol ran
    }

    #[test]
    fn stream_window_end_to_end() {
        let o = opts(&[
            "stream", "--k", "2", "--t", "2", "--block", "32", "--window", "128", "in.csv",
        ]);
        let r = execute(&o, stream_csv(600).as_bytes()).unwrap();
        assert_eq!(r.job, "stream-window");
        assert_eq!(r.centers.len(), 2);
        assert!(r.live_points.unwrap() < 300);
    }

    #[test]
    fn stream_continuous_end_to_end() {
        let o = opts(&[
            "stream",
            "--k",
            "2",
            "--t",
            "2",
            "--block",
            "32",
            "--sync-every",
            "200",
            "--sites",
            "3",
            "in.csv",
        ]);
        let r = execute(&o, stream_csv(500).as_bytes()).unwrap();
        assert_eq!(r.job, "continuous");
        let syncs = r.syncs.unwrap();
        assert!(syncs >= 3, "expected periodic syncs, got {syncs}");
        assert_eq!(r.rounds, 2 * syncs);
        assert!(r.bytes > 0);
        assert_eq!(r.round_stats.len(), 2 * syncs);
        assert!(r.cost < 100.0, "cost {}", r.cost);
    }

    #[test]
    fn uncertain_end_to_end() {
        let mut csv = String::from("node,prob,x,y\n");
        for n in 0..12 {
            let c = if n % 2 == 0 { 0.0 } else { 80.0 };
            csv.push_str(&format!("{n},0.5,{},{}\n", c, 0.1 * n as f64));
            csv.push_str(&format!("{n},0.5,{},{}\n", c + 0.5, 0.1 * n as f64));
        }
        let o = opts(&[
            "uncertain-median",
            "--k",
            "2",
            "--t",
            "0",
            "--sites",
            "2",
            "in.csv",
        ]);
        let r = execute(&o, csv.as_bytes()).unwrap();
        assert_eq!(r.job, "uncertain-median");
        assert_eq!(r.n, 12);
        assert!(r.cost < 30.0, "cost {}", r.cost);
    }

    #[test]
    fn blobs_input_generates_points() {
        let o = opts(&[
            "median",
            "--k",
            "4",
            "--t",
            "4",
            "--sites",
            "3",
            "blobs:n=300,dim=16,clusters=4,outliers=4,imbalance=1.0,seed=9",
        ]);
        let r = execute(&o, std::io::empty()).unwrap();
        assert_eq!(r.n, 304);
        assert_eq!(r.centers.len(), 4);
        assert_eq!(r.centers[0].len(), 16);
        assert!(r.cost.is_finite());
        // Deterministic by seed.
        let again = execute(&o, std::io::empty()).unwrap();
        assert_eq!(r.centers, again.centers);
        // Bad specs are errors, not panics.
        for bad in ["blobs:n=0,dim=4", "blobs:nope=3", "blobs:n", "blobs:dim=x"] {
            let o = opts(&["median", bad]);
            assert!(execute(&o, std::io::empty()).is_err(), "{bad}");
        }
        // Uncertain jobs reject point-generating specs.
        let o = opts(&["uncertain-median", "blobs:n=100,dim=4"]);
        assert!(execute(&o, std::io::empty()).is_err());
    }

    #[test]
    fn blobs_feed_stream_and_sweep() {
        let o = opts(&[
            "stream",
            "--k",
            "3",
            "--t",
            "2",
            "--block",
            "64",
            "blobs:n=400,dim=8,clusters=3,seed=3",
        ]);
        let r = execute(&o, std::io::empty()).unwrap();
        assert_eq!(r.n, 400);
        assert_eq!(r.centers.len(), 3);
        let o = opts(&[
            "sweep",
            "median",
            "--k",
            "2,3",
            "--t",
            "1",
            "--sites",
            "2",
            "blobs:n=200,dim=8,seed=5",
        ]);
        let arts = execute_sweep(&o, std::io::empty()).unwrap();
        assert_eq!(arts.len(), 2);
    }

    #[test]
    fn threads_do_not_change_results() {
        let serial = opts(&["median", "--k", "2", "--t", "1", "--sites", "3", "in.csv"]);
        let threaded = opts(&[
            "median",
            "--k",
            "2",
            "--t",
            "1",
            "--sites",
            "3",
            "--threads",
            "4",
            "in.csv",
        ]);
        let a = execute(&serial, toy_csv().as_bytes()).unwrap();
        let b = execute(&threaded, toy_csv().as_bytes()).unwrap();
        assert_eq!(a.centers, b.centers);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.bytes, b.bytes);
    }

    #[test]
    fn errors_propagate() {
        let o = opts(&["median", "--k", "100", "in.csv"]);
        assert!(execute(&o, "1,1\n2,2\n".as_bytes()).is_err());
        let o = opts(&["median", "in.csv"]);
        assert!(execute(&o, "not,a,number\nstill,not,numbers\n".as_bytes()).is_err());
        let o = opts(&["stream", "--k", "5", "in.csv"]);
        assert!(execute(&o, "1,1\n2,2\n".as_bytes()).is_err()); // k > n
        assert!(execute(&o, "# empty\n".as_bytes()).is_err());
    }

    #[test]
    fn stream_eps_zero_is_now_a_hard_error() {
        // Promoted from a stderr warning to a typed ConfigError: the run
        // must refuse before reading a single row.
        let o = opts(&["stream", "--eps", "0", "s.csv"]);
        let err = preflight(&o).unwrap_err();
        assert!(err.contains("unexcludable"), "{err}");
        let err = execute(&o, stream_csv(100).as_bytes()).unwrap_err();
        assert!(err.contains("unexcludable"), "{err}");
        // Batch commands keep accepting eps = 0.
        let o = opts(&["median", "--eps", "0", "--k", "2", "in.csv"]);
        assert!(preflight(&o).is_ok());
        assert!(execute(&o, toy_csv().as_bytes()).is_ok());
    }

    #[test]
    fn no_effect_transport_flags_still_warn() {
        // Structured, not silent, not fatal.
        let o = opts(&["subquadratic", "--transport", "tcp", "x.csv"]);
        let w = preflight(&o).unwrap();
        assert!(
            w.iter()
                .any(|w| matches!(w, ConfigWarning::TransportUnused { .. })),
            "{w:?}"
        );
        let o = opts(&["stream", "--latency", "5ms", "s.csv"]);
        let w = preflight(&o).unwrap();
        assert!(
            w.iter()
                .any(|w| matches!(w, ConfigWarning::TransportUnused { .. })),
            "{w:?}"
        );
        // ...but not when the runtime actually runs.
        let o = opts(&[
            "stream",
            "--sync-every",
            "100",
            "--transport",
            "tcp",
            "s.csv",
        ]);
        assert!(preflight(&o).unwrap().is_empty());
        assert!(preflight(&opts(&["median", "--transport", "tcp", "x.csv"]))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn tcp_transport_end_to_end_matches_channel() {
        let base = opts(&["median", "--k", "2", "--t", "1", "--sites", "3", "in.csv"]);
        let tcp = opts(&[
            "median",
            "--k",
            "2",
            "--t",
            "1",
            "--sites",
            "3",
            "--transport",
            "tcp",
            "in.csv",
        ]);
        let a = execute(&base, toy_csv().as_bytes()).unwrap();
        let b = execute(&tcp, toy_csv().as_bytes()).unwrap();
        assert_eq!(a.transport.as_deref(), Some("channel"));
        assert_eq!(b.transport.as_deref(), Some("tcp"));
        // Same bytes on the wire, same answer, regardless of backend.
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.centers, b.centers);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn mux_transport_end_to_end_matches_channel() {
        let base = opts(&["median", "--k", "2", "--t", "1", "--sites", "3", "in.csv"]);
        let mux = opts(&[
            "median",
            "--k",
            "2",
            "--t",
            "1",
            "--sites",
            "3",
            "--transport",
            "mux",
            "--threads",
            "2",
            "in.csv",
        ]);
        let a = execute(&base, toy_csv().as_bytes()).unwrap();
        let b = execute(&mux, toy_csv().as_bytes()).unwrap();
        assert_eq!(a.transport.as_deref(), Some("channel"));
        assert_eq!(b.transport.as_deref(), Some("mux"));
        // The event-loop backend moves the same bytes to the same answer.
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.centers, b.centers);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn fault_flags_end_to_end() {
        // Seeded dropout degrades rounds but the protocol still answers;
        // identical flags reproduce the identical artifact.
        let o = opts(&[
            "median",
            "--k",
            "2",
            "--t",
            "1",
            "--sites",
            "6",
            "--dropout",
            "0.4",
            "--fault-seed",
            "6",
            "--timeout",
            "10ms",
            "in.csv",
        ]);
        let r = execute(&o, toy_csv().as_bytes()).unwrap();
        assert_eq!(r.centers.len(), 2);
        assert!(r.degraded_rounds() > 0, "seed 6 drops sites in both rounds");
        assert!(r.total_dropouts() > 0);
        // Failed attempts charge their timeout to the simulated clock.
        assert!(r.network_ms >= 10.0, "network_ms {}", r.network_ms);
        // Identical flags reproduce everything but wall-clock timings.
        let again = execute(&o, toy_csv().as_bytes()).unwrap();
        assert_eq!(r.centers, again.centers);
        assert_eq!(r.bytes, again.bytes);
        assert_eq!(r.network_ms, again.network_ms);
        for (a, b) in r.round_stats.iter().zip(&again.round_stats) {
            assert_eq!(a.bytes_up, b.bytes_up);
            assert_eq!(
                (a.dropouts, a.retries, a.degraded),
                (b.dropouts, b.retries, b.degraded)
            );
        }
        // The JSON carries the per-round fault fields.
        assert!(r.to_json().contains("\"degraded\":true"));
        // Fault knobs on a protocol-free command warn but still run.
        let o = opts(&[
            "stream",
            "--k",
            "2",
            "--t",
            "2",
            "--dropout",
            "0.2",
            "s.csv",
        ]);
        let w = preflight(&o).unwrap();
        assert!(
            w.iter().any(|w| matches!(
                w,
                ConfigWarning::KnobUnused {
                    knob: "dropout",
                    ..
                }
            )),
            "{w:?}"
        );
    }

    #[test]
    fn observability_flags_end_to_end() {
        let trace =
            std::env::temp_dir().join(format!("dpc_cli_trace_{}.jsonl", std::process::id()));
        let o = opts(&[
            "median",
            "--k",
            "2",
            "--t",
            "1",
            "--sites",
            "3",
            "--dropout",
            "0.3",
            "--fault-seed",
            "6",
            "--trace",
            trace.to_str().unwrap(),
            "--metrics",
            "in.csv",
        ]);
        assert!(preflight(&o).unwrap().is_empty());
        let r = execute(&o, toy_csv().as_bytes()).unwrap();
        // The digest reconciles with the artifact's own accounting and
        // shows up in both renderings.
        let m = r.metrics.as_ref().expect("--metrics requested");
        assert_eq!(m.total_bytes, r.bytes as u64);
        assert_eq!(m.rounds, r.rounds as u64);
        assert!(r.text().contains("metrics:"));
        assert!(r.to_json().contains("\"metrics\":{"));
        // The trace is on disk, line-parseable, and replays.
        let doc = std::fs::read_to_string(&trace).unwrap();
        assert!(doc.starts_with("{\"schema\":\"dpc.trace/v1\""));
        let replay = dpc::obs::Trace::from_jsonl(&doc).unwrap();
        assert_eq!(replay.metrics().summary().total_bytes, r.bytes as u64);
        std::fs::remove_file(&trace).unwrap();

        // A trace on a protocol-free command warns (but still runs).
        let o = opts(&[
            "subquadratic",
            "--k",
            "2",
            "--trace",
            "unused.jsonl",
            "in.csv",
        ]);
        let w = preflight(&o).unwrap();
        assert!(
            w.iter()
                .any(|w| matches!(w, ConfigWarning::TraceWithoutProtocol { .. })),
            "{w:?}"
        );
        // A format without a path is flagged too.
        let o = opts(&["median", "--trace-format", "chrome", "in.csv"]);
        let w = preflight(&o).unwrap();
        assert!(
            w.iter()
                .any(|w| matches!(w, ConfigWarning::TraceFormatWithoutTrace)),
            "{w:?}"
        );
    }

    #[test]
    fn link_model_surfaces_in_artifact() {
        let o = opts(&[
            "median",
            "--k",
            "2",
            "--t",
            "1",
            "--latency",
            "5ms",
            "--bandwidth",
            "1M",
            "in.csv",
        ]);
        let r = execute(&o, toy_csv().as_bytes()).unwrap();
        // 2 rounds × (down latency + up latency) = at least 20 ms.
        assert!(r.network_ms >= 20.0, "network_ms {}", r.network_ms);
        let per_round: f64 = r.round_stats.iter().map(|x| x.network_ms).sum();
        assert!((per_round - r.network_ms).abs() < 1e-9);
    }

    #[test]
    fn sweep_end_to_end() {
        let o = opts(&[
            "sweep",
            "median",
            "--k",
            "2,3",
            "--t",
            "1",
            "--sites",
            "3",
            "--transport",
            "channel,tcp",
            "--parallelism",
            "2",
            "in.csv",
        ]);
        let arts = execute_sweep(&o, toy_csv().as_bytes()).unwrap();
        assert_eq!(arts.len(), 4);
        // Grid order: k varies slowest, transport fastest.
        let keys: Vec<(usize, String)> = arts
            .iter()
            .map(|a| (a.k, a.transport.clone().unwrap()))
            .collect();
        assert_eq!(
            keys,
            vec![
                (2, "channel".into()),
                (2, "tcp".into()),
                (3, "channel".into()),
                (3, "tcp".into()),
            ]
        );
        // Byte accounting is backend-independent per k.
        assert_eq!(arts[0].bytes, arts[1].bytes);
        assert_eq!(arts[2].bytes, arts[3].bytes);
        // The table writers cover every cell.
        let table = dpc::api::csv_table(&arts);
        assert_eq!(table.trim_end().lines().count(), 5);
        // A sweep with an invalid cell fails fast.
        let o = opts(&["sweep", "median", "--k", "0,2", "in.csv"]);
        assert!(execute_sweep(&o, toy_csv().as_bytes()).is_err());
    }

    #[test]
    fn encoding_flag_end_to_end() {
        let raw = opts(&["median", "--k", "2", "--t", "1", "--sites", "3", "in.csv"]);
        let a = execute(&raw, toy_csv().as_bytes()).unwrap();
        let f16 = opts(&[
            "median",
            "--k",
            "2",
            "--t",
            "1",
            "--sites",
            "3",
            "--encoding",
            "f16",
            "in.csv",
        ]);
        let b = execute(&f16, toy_csv().as_bytes()).unwrap();
        assert_eq!(b.encoding.as_deref(), Some("f16"));
        assert_eq!(b.bytes_raw, Some(a.bytes));
        assert!(b.bytes < a.bytes, "{} vs {}", b.bytes, a.bytes);
        assert!(b.quality_delta.is_some());
        // The text report renders the raw -> compressed line.
        assert!(b.text().contains("encoding: f16, bytes "), "{}", b.text());
        assert!(b.to_json().contains("\"encoding\":\"f16\""));
        // Raw artifacts never mention the codec.
        assert_eq!(a.encoding, None);
        assert!(!a.to_json().contains("encoding"));
        // A no-effect combo warns but still runs.
        let o = opts(&["subquadratic", "--k", "2", "--encoding", "delta", "x.csv"]);
        let w = preflight(&o).unwrap();
        assert!(
            w.iter().any(|w| matches!(
                w,
                ConfigWarning::KnobUnused {
                    knob: "encoding",
                    ..
                }
            )),
            "{w:?}"
        );
        assert!(execute(&o, toy_csv().as_bytes()).is_ok());
    }

    #[test]
    fn sweep_encoding_axis_emits_the_frontier() {
        let o = opts(&[
            "sweep",
            "median",
            "--k",
            "4",
            "--t",
            "4",
            "--sites",
            "3",
            "--encoding",
            "raw,f32,delta",
            "blobs:n=300,dim=16,clusters=4,outliers=4,seed=9",
        ]);
        let arts = execute_sweep(&o, std::io::empty()).unwrap();
        assert_eq!(arts.len(), 3);
        let raw = &arts[0];
        assert_eq!(raw.encoding, None);
        for enc in &arts[1..] {
            // Every encoded cell's raw accounting reproduces the raw
            // cell's wire total exactly.
            assert_eq!(enc.bytes_raw, Some(raw.bytes));
        }
        // The quantizing codec strictly compresses this 16-dim workload.
        assert!(
            arts[1].bytes * 3 < raw.bytes * 2,
            "f32 should beat 1.5x: {} vs {}",
            arts[1].bytes,
            raw.bytes
        );
        // The lossless cell reproduces the raw answer bit for bit.
        assert_eq!(arts[2].centers, raw.centers);
        assert_eq!(arts[2].cost, raw.cost);
        let table = dpc::api::csv_table(&arts);
        assert!(table
            .lines()
            .next()
            .unwrap()
            .ends_with("encoding,bytes_raw"));
        assert!(table.contains(",f32,"), "{table}");
    }

    #[test]
    fn artifact_json_round_trips_from_cli() {
        let o = opts(&["median", "--k", "2", "--t", "1", "in.csv"]);
        let r = execute(&o, toy_csv().as_bytes()).unwrap();
        let back = Artifact::from_json(&r.to_json()).unwrap();
        assert_eq!(back.to_json(), r.to_json());
        assert_eq!(back.centers, r.centers);
    }
}
