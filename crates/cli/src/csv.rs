//! Minimal CSV readers (no external dependency): numeric point rows and
//! the uncertain-node format.

use dpc::prelude::{NodeSet, PointSet, UncertainNode};
use std::collections::BTreeMap;

/// A CSV parse failure with a line number.
#[derive(Debug, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

fn split_row(line: &str) -> Vec<&str> {
    line.split(',').map(str::trim).collect()
}

fn is_numeric_row(fields: &[&str]) -> bool {
    !fields.is_empty() && fields.iter().all(|f| f.parse::<f64>().is_ok())
}

/// Parses a deterministic point CSV: one point per row, all columns
/// numeric. A single non-numeric first row is treated as a header. Empty
/// lines and `#` comments are skipped.
pub fn parse_points_csv(text: &str) -> Result<PointSet, CsvError> {
    let mut points: Option<PointSet> = None;
    let mut saw_header = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields = split_row(line);
        if !is_numeric_row(&fields) {
            if points.is_none() && !saw_header {
                saw_header = true;
                continue; // header row
            }
            return Err(CsvError {
                line: idx + 1,
                message: format!("non-numeric field in '{line}'"),
            });
        }
        let coords: Vec<f64> = fields.iter().map(|f| f.parse().expect("checked")).collect();
        let ps = points.get_or_insert_with(|| PointSet::new(coords.len()));
        if coords.len() != ps.dim() {
            return Err(CsvError {
                line: idx + 1,
                message: format!("expected {} columns, found {}", ps.dim(), coords.len()),
            });
        }
        ps.push(&coords);
    }
    points.ok_or(CsvError {
        line: 0,
        message: "no data rows".into(),
    })
}

/// Parses the uncertain-node CSV: `node_id,prob,coord0,coord1,…`. Rows
/// sharing a `node_id` form one distribution; probabilities per node are
/// normalized (so raw weights are accepted).
pub fn parse_uncertain_csv(text: &str) -> Result<NodeSet, CsvError> {
    let mut rows: BTreeMap<u64, Vec<(f64, Vec<f64>)>> = BTreeMap::new();
    let mut dim: Option<usize> = None;
    let mut saw_header = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields = split_row(line);
        if fields.len() < 3 {
            return Err(CsvError {
                line: idx + 1,
                message: "need at least node_id, prob, one coordinate".into(),
            });
        }
        if !is_numeric_row(&fields) {
            if rows.is_empty() && !saw_header {
                saw_header = true;
                continue;
            }
            return Err(CsvError {
                line: idx + 1,
                message: format!("non-numeric field in '{line}'"),
            });
        }
        let id: u64 = fields[0].parse().map_err(|_| CsvError {
            line: idx + 1,
            message: "node_id must be an integer".into(),
        })?;
        let prob: f64 = fields[1].parse().expect("checked");
        if prob <= 0.0 {
            return Err(CsvError {
                line: idx + 1,
                message: "prob must be positive".into(),
            });
        }
        let coords: Vec<f64> = fields[2..]
            .iter()
            .map(|f| f.parse().expect("checked"))
            .collect();
        if let Some(d) = dim {
            if coords.len() != d {
                return Err(CsvError {
                    line: idx + 1,
                    message: format!("expected {} coords, found {}", d, coords.len()),
                });
            }
        } else {
            dim = Some(coords.len());
        }
        rows.entry(id).or_default().push((prob, coords));
    }
    let dim = dim.ok_or(CsvError {
        line: 0,
        message: "no data rows".into(),
    })?;
    let mut ns = NodeSet::new(dim);
    for (_, support_rows) in rows {
        let total: f64 = support_rows.iter().map(|(p, _)| p).sum();
        let mut support = Vec::with_capacity(support_rows.len());
        let mut probs = Vec::with_capacity(support_rows.len());
        for (p, coords) in &support_rows {
            support.push(ns.ground.push(coords));
            probs.push(p / total);
        }
        let drift: f64 = 1.0 - probs.iter().sum::<f64>();
        probs[0] += drift;
        ns.nodes.push(UncertainNode::new(support, probs));
    }
    Ok(ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_points_with_header() {
        let ps = parse_points_csv("x,y\n1,2\n3,4\n# comment\n\n5,6\n").unwrap();
        assert_eq!(ps.len(), 3);
        assert_eq!(ps.dim(), 2);
        assert_eq!(ps.point(2), &[5.0, 6.0]);
    }

    #[test]
    fn parses_points_without_header() {
        let ps = parse_points_csv("1.5,2.5\n-3,4e2\n").unwrap();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.point(1), &[-3.0, 400.0]);
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = parse_points_csv("1,2\n3\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_mid_file_garbage() {
        let err = parse_points_csv("1,2\nfoo,bar\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_empty() {
        assert!(parse_points_csv("# nothing\n").is_err());
    }

    #[test]
    fn parses_uncertain_nodes() {
        let text = "node,prob,x,y\n0,0.5,0,0\n0,0.5,1,0\n1,2,5,5\n1,1,6,5\n";
        let ns = parse_uncertain_csv(text).unwrap();
        assert_eq!(ns.len(), 2);
        assert_eq!(ns.nodes[0].support_size(), 2);
        // Node 1 had raw weights 2 and 1 -> normalized 2/3, 1/3.
        assert!((ns.nodes[1].probs[0] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn uncertain_rejects_bad_rows() {
        assert!(parse_uncertain_csv("0,0.5\n").is_err()); // too few columns
        assert!(parse_uncertain_csv("0,-1,2,3\n").is_err()); // bad prob
        let err = parse_uncertain_csv("0,0.5,1,2\n0,0.5,1\n").unwrap_err();
        assert_eq!(err.line, 2); // dim mismatch
    }
}
