//! Minimal CSV readers (no external dependency): numeric point rows and
//! the uncertain-node format.
//!
//! All readers consume any [`BufRead`] line by line, so large inputs are
//! never materialized as one giant string — the `stream` subcommand feeds
//! rows straight into the engine, and the batch subcommands build their
//! [`PointSet`] incrementally. The `parse_*` helpers remain as thin
//! in-memory wrappers for tests and callers that already hold a string.

use dpc::prelude::{NodeSet, PointSet, UncertainNode};
use std::collections::BTreeMap;
use std::io::BufRead;

/// A CSV parse failure with a line number.
#[derive(Debug, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based line (0 for whole-file conditions such as an empty input).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

fn split_row(line: &str) -> Vec<&str> {
    line.split(',').map(str::trim).collect()
}

fn is_numeric_row(fields: &[&str]) -> bool {
    !fields.is_empty() && fields.iter().all(|f| f.parse::<f64>().is_ok())
}

/// Streams numeric point rows out of `reader`, invoking `row` once per
/// data row with the parsed coordinates (a reused scratch buffer).
///
/// A single non-numeric first row is treated as a header; empty lines and
/// `#` comments are skipped; every data row must match the first row's
/// column count. Returns the number of data rows seen.
pub fn for_each_point_row<R: BufRead>(
    mut reader: R,
    mut row: impl FnMut(&[f64]) -> Result<(), CsvError>,
) -> Result<usize, CsvError> {
    let mut dim: Option<usize> = None;
    let mut saw_header = false;
    let mut rows = 0usize;
    let mut coords: Vec<f64> = Vec::new();
    // One reused line buffer: ingest throughput is the point of this
    // reader, so no per-row allocation.
    let mut raw = String::new();
    let mut idx = 0usize;
    loop {
        raw.clear();
        let read = reader.read_line(&mut raw).map_err(|e| CsvError {
            line: idx + 1,
            message: format!("read error: {e}"),
        })?;
        if read == 0 {
            break;
        }
        idx += 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields = split_row(line);
        if !is_numeric_row(&fields) {
            if rows == 0 && !saw_header {
                saw_header = true;
                continue; // header row
            }
            return Err(CsvError {
                line: idx,
                message: format!("non-numeric field in '{line}'"),
            });
        }
        coords.clear();
        for f in &fields {
            coords.push(f.parse().expect("checked"));
        }
        match dim {
            Some(d) if coords.len() != d => {
                return Err(CsvError {
                    line: idx,
                    message: format!("expected {} columns, found {}", d, coords.len()),
                });
            }
            None => dim = Some(coords.len()),
            _ => {}
        }
        rows += 1;
        row(&coords)?;
    }
    Ok(rows)
}

/// Reads a deterministic point CSV from any [`BufRead`] source.
pub fn read_points_csv<R: BufRead>(reader: R) -> Result<PointSet, CsvError> {
    let mut points: Option<PointSet> = None;
    for_each_point_row(reader, |coords| {
        points
            .get_or_insert_with(|| PointSet::new(coords.len()))
            .push(coords);
        Ok(())
    })?;
    points.ok_or(CsvError {
        line: 0,
        message: "no data rows".into(),
    })
}

/// Parses a deterministic point CSV held in memory (see
/// [`for_each_point_row`] for the format).
pub fn parse_points_csv(text: &str) -> Result<PointSet, CsvError> {
    read_points_csv(text.as_bytes())
}

/// Reads the uncertain-node CSV from any [`BufRead`] source:
/// `node_id,prob,coord0,coord1,…`. Rows sharing a `node_id` form one
/// distribution; probabilities per node are normalized (so raw weights are
/// accepted).
pub fn read_uncertain_csv<R: BufRead>(mut reader: R) -> Result<NodeSet, CsvError> {
    let mut rows: BTreeMap<u64, Vec<(f64, Vec<f64>)>> = BTreeMap::new();
    let mut dim: Option<usize> = None;
    let mut saw_header = false;
    let mut raw = String::new();
    let mut idx = 0usize;
    loop {
        raw.clear();
        let read = reader.read_line(&mut raw).map_err(|e| CsvError {
            line: idx + 1,
            message: format!("read error: {e}"),
        })?;
        if read == 0 {
            break;
        }
        idx += 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields = split_row(line);
        if fields.len() < 3 {
            return Err(CsvError {
                line: idx,
                message: "need at least node_id, prob, one coordinate".into(),
            });
        }
        if !is_numeric_row(&fields) {
            if rows.is_empty() && !saw_header {
                saw_header = true;
                continue;
            }
            return Err(CsvError {
                line: idx,
                message: format!("non-numeric field in '{line}'"),
            });
        }
        let id: u64 = fields[0].parse().map_err(|_| CsvError {
            line: idx,
            message: "node_id must be an integer".into(),
        })?;
        let prob: f64 = fields[1].parse().expect("checked");
        if prob <= 0.0 {
            return Err(CsvError {
                line: idx,
                message: "prob must be positive".into(),
            });
        }
        let coords: Vec<f64> = fields[2..]
            .iter()
            .map(|f| f.parse().expect("checked"))
            .collect();
        if let Some(d) = dim {
            if coords.len() != d {
                return Err(CsvError {
                    line: idx,
                    message: format!("expected {} coords, found {}", d, coords.len()),
                });
            }
        } else {
            dim = Some(coords.len());
        }
        rows.entry(id).or_default().push((prob, coords));
    }
    let dim = dim.ok_or(CsvError {
        line: 0,
        message: "no data rows".into(),
    })?;
    let mut ns = NodeSet::new(dim);
    for (_, support_rows) in rows {
        let total: f64 = support_rows.iter().map(|(p, _)| p).sum();
        let mut support = Vec::with_capacity(support_rows.len());
        let mut probs = Vec::with_capacity(support_rows.len());
        for (p, coords) in &support_rows {
            support.push(ns.ground.push(coords));
            probs.push(p / total);
        }
        let drift: f64 = 1.0 - probs.iter().sum::<f64>();
        probs[0] += drift;
        ns.nodes.push(UncertainNode::new(support, probs));
    }
    Ok(ns)
}

/// Parses the uncertain-node CSV held in memory.
pub fn parse_uncertain_csv(text: &str) -> Result<NodeSet, CsvError> {
    read_uncertain_csv(text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_points_with_header() {
        let ps = parse_points_csv("x,y\n1,2\n3,4\n# comment\n\n5,6\n").unwrap();
        assert_eq!(ps.len(), 3);
        assert_eq!(ps.dim(), 2);
        assert_eq!(ps.point(2), &[5.0, 6.0]);
    }

    #[test]
    fn parses_points_without_header() {
        let ps = parse_points_csv("1.5,2.5\n-3,4e2\n").unwrap();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.point(1), &[-3.0, 400.0]);
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = parse_points_csv("1,2\n3\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_mid_file_garbage() {
        let err = parse_points_csv("1,2\nfoo,bar\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_empty() {
        assert!(parse_points_csv("# nothing\n").is_err());
    }

    #[test]
    fn row_streaming_visits_in_order_without_materializing() {
        let mut seen: Vec<Vec<f64>> = Vec::new();
        let rows = for_each_point_row("x,y\n1,2\n3,4\n".as_bytes(), |c| {
            seen.push(c.to_vec());
            Ok(())
        })
        .unwrap();
        assert_eq!(rows, 2);
        assert_eq!(seen, vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
    }

    #[test]
    fn row_streaming_propagates_callback_errors() {
        let err = for_each_point_row("1,2\n3,4\n".as_bytes(), |c| {
            if c[0] > 2.0 {
                Err(CsvError {
                    line: 0,
                    message: "stop".into(),
                })
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert_eq!(err.message, "stop");
    }

    #[test]
    fn parses_uncertain_nodes() {
        let text = "node,prob,x,y\n0,0.5,0,0\n0,0.5,1,0\n1,2,5,5\n1,1,6,5\n";
        let ns = parse_uncertain_csv(text).unwrap();
        assert_eq!(ns.len(), 2);
        assert_eq!(ns.nodes[0].support_size(), 2);
        // Node 1 had raw weights 2 and 1 -> normalized 2/3, 1/3.
        assert!((ns.nodes[1].probs[0] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn uncertain_rejects_bad_rows() {
        assert!(parse_uncertain_csv("0,0.5\n").is_err()); // too few columns
        assert!(parse_uncertain_csv("0,-1,2,3\n").is_err()); // bad prob
        let err = parse_uncertain_csv("0,0.5,1,2\n0,0.5,1\n").unwrap_err();
        assert_eq!(err.line, 2); // dim mismatch
    }
}
