//! Library backing the `dpc` command-line tool.
//!
//! Split out of `main.rs` so parsing and orchestration are unit-testable.
//! The CLI runs the distributed partial-clustering protocols on CSV data:
//!
//! ```text
//! dpc median  --k 5 --t 20 --sites 8 data.csv
//! dpc means   --k 5 --t 20 --sites 8 --eps 0.5 data.csv
//! dpc center  --k 5 --t 20 --sites 8 --one-round data.csv
//! dpc uncertain-median --k 3 --t 4 --sites 3 nodes.csv
//! dpc stream  --k 5 --t 20 --block 256 --window 4096 data.csv
//! dpc stream  --k 5 --t 20 --sync-every 1024 --sites 8 data.csv
//! ```
//!
//! Deterministic point CSV: one point per row, numeric columns, optional
//! header. Uncertain CSV: `node_id,prob,coord0,coord1,…` rows; rows sharing
//! a `node_id` form one distribution. Input is consumed through a
//! [`std::io::BufRead`] row iterator, so large files are never loaded
//! whole; the `stream` subcommand feeds rows to the engine as they parse.

pub mod args;
pub mod csv;
pub mod run;

pub use args::{parse_args, Command, Options, StreamObjective, SweepSpec};
pub use csv::{
    for_each_point_row, parse_points_csv, parse_uncertain_csv, read_points_csv, read_uncertain_csv,
};
pub use dpc::api::{Artifact, ConfigWarning, RoundBreakdown};
pub use run::{execute, execute_sweep, is_synthetic_input, job_for, preflight};
