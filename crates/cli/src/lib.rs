//! Library backing the `dpc` command-line tool.
//!
//! Split out of `main.rs` so parsing and orchestration are unit-testable.
//! The CLI runs the distributed partial-clustering protocols on CSV data:
//!
//! ```text
//! dpc median  --k 5 --t 20 --sites 8 data.csv
//! dpc means   --k 5 --t 20 --sites 8 --eps 0.5 data.csv
//! dpc center  --k 5 --t 20 --sites 8 --one-round data.csv
//! dpc uncertain-median --k 3 --t 4 --sites 3 nodes.csv
//! ```
//!
//! Deterministic point CSV: one point per row, numeric columns, optional
//! header. Uncertain CSV: `node_id,prob,coord0,coord1,…` rows; rows sharing
//! a `node_id` form one distribution.

pub mod args;
pub mod csv;
pub mod run;

pub use args::{parse_args, Command, Options};
pub use csv::{parse_points_csv, parse_uncertain_csv};
pub use run::{execute, Report};
