//! Micro-benchmarks of the bulk distance kernels: scalar per-pair loops
//! vs the blocked bulk layer vs bulk + threads, at the dimensions the
//! `BENCH_kernels.json` experiment row records (`dpc-experiments kernels`
//! writes the canonical numbers; this target is the quick interactive
//! view of the same comparison).
//!
//! The "scalar" baselines reproduce the pre-kernel-layer code shape: one
//! `Metric::dist` / `sq_dist_to` call per (point, candidate) pair, one
//! accumulator — the latency-bound inner loop the bulk layer replaces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpc::cluster::gonzalez_with;
use dpc::prelude::*;
use dpc::workloads::{gaussian_blobs, BlobsSpec};

const DIMS: &[usize] = &[4, 32, 128];
const N: usize = 20_000;
const CLUSTERS: usize = 16;
/// Candidate-set size (`k + t`, the paper's `t >> k` regime).
const K: usize = 64;

fn blobs(dim: usize) -> PointSet {
    gaussian_blobs(BlobsSpec {
        clusters: CLUSTERS,
        points: N,
        outliers: 0,
        dim,
        imbalance: 0.5,
        seed: 0xbe7c + dim as u64,
        ..Default::default()
    })
    .points
}

/// Scalar assignment baseline: the historical per-pair `nearest` loop.
fn scalar_assign(ps: &PointSet, centers: &[usize]) -> f64 {
    let m = EuclideanMetric::new(ps);
    let mut acc = 0.0;
    for i in 0..ps.len() {
        let mut best = f64::INFINITY;
        for &c in centers {
            let d = m.dist(i, c);
            if d < best {
                best = d;
            }
        }
        acc += best;
    }
    acc
}

fn bench_assign(c: &mut Criterion) {
    let mut g = c.benchmark_group("assign_nearest");
    g.sample_size(10);
    for &dim in DIMS {
        let ps = blobs(dim);
        let centers: Vec<usize> = (0..K).map(|c| c * (N / K)).collect();
        let ids: Vec<usize> = (0..ps.len()).collect();
        let m = EuclideanMetric::new(&ps);
        g.bench_with_input(BenchmarkId::new("scalar", dim), &dim, |b, _| {
            b.iter(|| scalar_assign(&ps, &centers));
        });
        g.bench_with_input(BenchmarkId::new("bulk", dim), &dim, |b, _| {
            let assigner = NearestAssigner::new(&m);
            b.iter(|| assigner.assign(&ids, &centers));
        });
        g.bench_with_input(BenchmarkId::new("bulk_threads", dim), &dim, |b, _| {
            let assigner = NearestAssigner::with_threads(&m, ThreadBudget::available());
            b.iter(|| assigner.assign(&ids, &centers));
        });
    }
    g.finish();
}

/// Scalar Gonzalez-relax baseline: the pre-kernel-layer traversal
/// verbatim — fused relax + farthest scan with assignment tracking.
fn scalar_gonzalez_relax(ps: &PointSet, ids: &[usize], steps: usize) -> f64 {
    let m = EuclideanMetric::new(ps);
    let n = ids.len();
    let mut best = vec![f64::INFINITY; n];
    let mut pos = vec![0usize; n];
    let mut chosen = 0usize;
    for step in 0..steps {
        let mut far = (0usize, -1.0f64);
        let zipped = best.iter_mut().zip(pos.iter_mut()).zip(ids);
        for (i, ((b, p), &id)) in zipped.enumerate() {
            let d = m.dist(id, ids[chosen]);
            if d < *b {
                *b = d;
                *p = step;
            }
            if *b > far.1 {
                far = (i, *b);
            }
        }
        chosen = far.0;
    }
    best.iter().sum()
}

/// Forces the pre-fusion traversal shape — bulk relax pass followed by a
/// separate farthest scan — by claiming the relax kernel prunes. At low
/// dimension the kernel cannot actually prune, so this pins the cost of
/// the second sweep that the fused serial path removes.
struct SplitRelax<'a>(EuclideanMetric<'a>);

impl Metric for SplitRelax<'_> {
    fn len(&self) -> usize {
        self.0.len()
    }
    fn dist(&self, i: usize, j: usize) -> f64 {
        self.0.dist(i, j)
    }
    fn relax_min_prunes(&self) -> bool {
        true
    }
    fn relax_min_block(
        &self,
        c: usize,
        ids: &[usize],
        best_d: &mut [f64],
        best_pos: &mut [usize],
        mark: usize,
    ) {
        self.0.relax_min_block(c, ids, best_d, best_pos, mark)
    }
}

fn bench_gonzalez_relax(c: &mut Criterion) {
    let mut g = c.benchmark_group("gonzalez_prefix16");
    g.sample_size(10);
    for &dim in DIMS {
        let ps = blobs(dim);
        let ids: Vec<usize> = (0..ps.len()).collect();
        let m = EuclideanMetric::new(&ps);
        g.bench_with_input(BenchmarkId::new("scalar", dim), &dim, |b, _| {
            b.iter(|| scalar_gonzalez_relax(&ps, &ids, CLUSTERS));
        });
        g.bench_with_input(BenchmarkId::new("bulk", dim), &dim, |b, _| {
            b.iter(|| gonzalez(&m, &ids, CLUSTERS, 0));
        });
        g.bench_with_input(BenchmarkId::new("bulk_split", dim), &dim, |b, _| {
            let split = SplitRelax(EuclideanMetric::new(&ps));
            b.iter(|| gonzalez(&split, &ids, CLUSTERS, 0));
        });
        g.bench_with_input(BenchmarkId::new("bulk_threads", dim), &dim, |b, _| {
            b.iter(|| gonzalez_with(&m, &ids, CLUSTERS, 0, ThreadBudget::available()));
        });
    }
    g.finish();
}

/// Scalar Lloyd-assignment baseline: `sq_dist_to` per (point, centroid).
fn scalar_lloyd_assign(ps: &PointSet, centroids: &[Vec<f64>]) -> f64 {
    let mut acc = 0.0;
    for i in 0..ps.len() {
        let mut best = f64::INFINITY;
        for c in centroids {
            let d = ps.sq_dist_to(i, c);
            if d < best {
                best = d;
            }
        }
        acc += best;
    }
    acc
}

fn bench_lloyd_assign(c: &mut Criterion) {
    let mut g = c.benchmark_group("lloyd_assign");
    g.sample_size(10);
    for &dim in DIMS {
        let ps = blobs(dim);
        let centroids: Vec<Vec<f64>> = (0..K).map(|c| ps.point(c * (N / K)).to_vec()).collect();
        let ids: Vec<usize> = (0..ps.len()).collect();
        g.bench_with_input(BenchmarkId::new("scalar", dim), &dim, |b, _| {
            b.iter(|| scalar_lloyd_assign(&ps, &centroids));
        });
        g.bench_with_input(BenchmarkId::new("bulk", dim), &dim, |b, _| {
            let block = CenterBlock::from_rows(dim, &centroids);
            b.iter(|| block.assign_sq(&ps, &ids, ThreadBudget::serial()));
        });
        g.bench_with_input(BenchmarkId::new("bulk_threads", dim), &dim, |b, _| {
            let block = CenterBlock::from_rows(dim, &centroids);
            b.iter(|| block.assign_sq(&ps, &ids, ThreadBudget::available()));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_assign,
    bench_gonzalez_relax,
    bench_lloyd_assign
);
criterion_main!(benches);
