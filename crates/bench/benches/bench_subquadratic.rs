//! E6 companion bench: Theorem 3.10's subquadratic solver vs the
//! quadratic Theorem 3.1 reference across n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpc::prelude::*;
// Benches measure the raw protocol paths, so they import the legacy
// entry points at their non-deprecated crate-level paths.
use dpc::core::subquadratic_median;

fn bench_subquadratic(c: &mut Criterion) {
    let mut g = c.benchmark_group("subquadratic_vs_quadratic");
    g.sample_size(10);
    for &n in &[1000usize, 2000, 4000] {
        let t = ((n as f64).sqrt() as usize) / 2;
        let mix = gaussian_mixture(MixtureSpec {
            clusters: 4,
            inliers: n,
            outliers: t,
            seed: n as u64,
            ..Default::default()
        });
        g.bench_with_input(BenchmarkId::new("quadratic", n), &n, |b, _| {
            let w = WeightedSet::unit(mix.points.len());
            let m = EuclideanMetric::new(&mix.points);
            b.iter(|| {
                median_bicriteria(
                    &m,
                    &w,
                    4,
                    t as f64,
                    Objective::Median,
                    BicriteriaParams::default(),
                )
            });
        });
        g.bench_with_input(BenchmarkId::new("subquadratic", n), &n, |b, _| {
            b.iter(|| subquadratic_median(&mix.points, 4, t, SubquadraticParams::default()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_subquadratic);
criterion_main!(benches);
