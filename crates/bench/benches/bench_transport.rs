//! Transport-runtime benchmarks: the per-round cost of moving a round
//! trip through each backend, and the spawn overhead the persistent
//! worker runtime removed.
//!
//! `spawn_per_round` re-implements the pre-runtime simulator faithfully:
//! a fresh `thread::scope` with one thread per site on *every* round —
//! `r·s` spawns per protocol instead of the runtime's `s`. On the
//! 16-site multi-round workload below, `runtime/channel` must be no
//! slower than `baseline/spawn_per_round` (the acceptance bar for the
//! refactor); in practice the gap is the whole thread-spawn cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpc::coordinator::{
    run_protocol, Coordinator, CoordinatorStep, RunOptions, Site, TransportKind,
};
use dpc::metric::WireWriter;
use std::time::Instant;

use bytes::Bytes;

const SITES: usize = 16;
const ROUNDS: usize = 24;
const PAYLOAD: usize = 64;

/// A site with negligible compute: checksums the payload and echoes a
/// fixed-size reply, so the benchmark isolates transport cost.
struct EchoSite {
    id: u64,
}

impl Site for EchoSite {
    fn handle(&mut self, round: usize, msg: &Bytes) -> Bytes {
        let sum: u64 = msg.as_ref().iter().map(|&b| b as u64).sum();
        let mut w = WireWriter::new();
        w.put_varint(sum ^ self.id ^ round as u64);
        w.finish()
    }
}

/// Coordinator driving `ROUNDS` broadcast rounds of `PAYLOAD` bytes.
struct PingCoordinator {
    rounds: usize,
    acc: u64,
}

impl Coordinator for PingCoordinator {
    type Output = u64;

    fn step(&mut self, round: usize, replies: Vec<Option<Bytes>>) -> CoordinatorStep {
        self.acc = self.acc.wrapping_add(
            replies
                .iter()
                .map(|r| r.as_ref().map_or(0, |r| r.len() as u64))
                .sum(),
        );
        if round < self.rounds {
            CoordinatorStep::Broadcast(Bytes::from(vec![round as u8; PAYLOAD]))
        } else {
            CoordinatorStep::Finish
        }
    }

    fn finish(self) -> u64 {
        self.acc
    }
}

fn sites() -> Vec<Box<dyn Site + 'static>> {
    (0..SITES)
        .map(|i| Box::new(EchoSite { id: i as u64 }) as Box<dyn Site>)
        .collect()
}

/// The pre-runtime simulator: spawn `s` OS threads on every round.
fn spawn_per_round(sites: &mut [Box<dyn Site + '_>], mut coordinator: PingCoordinator) -> u64 {
    let s = sites.len();
    let mut replies: Vec<Option<Bytes>> = Vec::new();
    for round in 0.. {
        let step = coordinator.step(round, std::mem::take(&mut replies));
        let msgs: Vec<Bytes> = match step {
            CoordinatorStep::Broadcast(m) => vec![m; s],
            CoordinatorStep::Messages(ms) => ms,
            CoordinatorStep::Finish => return coordinator.finish(),
        };
        let mut new_replies: Vec<Option<Bytes>> = vec![None; s];
        std::thread::scope(|scope| {
            for ((site, reply), msg) in sites.iter_mut().zip(new_replies.iter_mut()).zip(&msgs) {
                scope.spawn(move || {
                    let t = Instant::now();
                    *reply = Some(site.handle(round, msg));
                    std::hint::black_box(t.elapsed());
                });
            }
        });
        replies = new_replies;
    }
    unreachable!()
}

fn bench_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("transport_16_sites");
    g.sample_size(20);
    let coord = || PingCoordinator {
        rounds: ROUNDS,
        acc: 0,
    };

    g.bench_with_input(
        BenchmarkId::new("baseline", "spawn_per_round"),
        &(),
        |b, _| {
            b.iter(|| {
                let mut s = sites();
                spawn_per_round(&mut s, coord())
            });
        },
    );
    for (name, options) in [
        ("inline", RunOptions::sequential()),
        ("channel", RunOptions::new()),
        ("tcp", RunOptions::new().transport(TransportKind::Tcp)),
    ] {
        g.bench_with_input(BenchmarkId::new("runtime", name), &(), |b, _| {
            b.iter(|| {
                let mut s = sites();
                run_protocol(&mut s, coord(), options.clone()).output
            });
        });
    }
    g.finish();
}

/// The same comparison on a real protocol: Algorithm 1 at 16 sites.
/// Spawn overhead matters less here (site compute dominates), which is
/// exactly the point — the channel backend keeps the protocol path free
/// of per-round spawn cost without taxing compute-bound workloads.
fn bench_algo1_backends(c: &mut Criterion) {
    use dpc::prelude::*;
    // Benches measure the raw protocol paths, so they import the legacy
    // entry points at their non-deprecated crate-level paths.
    use dpc::core::run_distributed_median;
    let mix = gaussian_mixture(MixtureSpec {
        clusters: 4,
        inliers: 1600,
        outliers: 16,
        seed: 42,
        ..Default::default()
    });
    let sh = partition(
        &mix.points,
        SITES,
        PartitionStrategy::Random,
        &mix.outlier_ids,
        42,
    );
    let mut g = c.benchmark_group("algo1_16_sites");
    g.sample_size(10);
    for (name, options) in [
        ("channel", RunOptions::new()),
        ("tcp", RunOptions::new().transport(TransportKind::Tcp)),
    ] {
        g.bench_with_input(BenchmarkId::new("median", name), &(), |b, _| {
            b.iter(|| run_distributed_median(&sh, MedianConfig::new(4, 16), options.clone()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_backends, bench_algo1_backends);
criterion_main!(benches);
