//! End-to-end protocol benchmarks: the Table 1 algorithms as whole
//! pipelines (comm accounting included), at fixed data scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpc::prelude::*;
// Benches measure the raw protocol paths, so they import the legacy
// entry points at their non-deprecated crate-level paths.
use dpc::core::{run_distributed_center, run_distributed_median, run_one_round_center};
use dpc::uncertain::{run_center_g, run_uncertain_median};

fn shards(s: usize, n: usize, t: usize, seed: u64) -> Vec<PointSet> {
    let mix = gaussian_mixture(MixtureSpec {
        clusters: 4,
        inliers: n,
        outliers: t,
        seed,
        ..Default::default()
    });
    partition(
        &mix.points,
        s,
        PartitionStrategy::Random,
        &mix.outlier_ids,
        seed,
    )
}

fn bench_median_protocol(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol_median");
    g.sample_size(10);
    for &s in &[4usize, 8] {
        let sh = shards(s, 1200, 16, 10 + s as u64);
        g.bench_with_input(BenchmarkId::new("2round", s), &s, |b, _| {
            b.iter(|| {
                run_distributed_median(
                    &sh,
                    MedianConfig::new(4, 16),
                    RunOptions {
                        parallel: false,
                        ..Default::default()
                    },
                )
            });
        });
    }
    g.finish();
}

fn bench_center_protocol(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol_center");
    g.sample_size(10);
    for &s in &[4usize, 8] {
        let sh = shards(s, 2000, 24, 20 + s as u64);
        let cfg = CenterConfig::new(4, 24);
        g.bench_with_input(BenchmarkId::new("2round", s), &s, |b, _| {
            b.iter(|| {
                run_distributed_center(
                    &sh,
                    cfg,
                    RunOptions {
                        parallel: false,
                        ..Default::default()
                    },
                )
            });
        });
        g.bench_with_input(BenchmarkId::new("1round_malkomes", s), &s, |b, _| {
            b.iter(|| {
                run_one_round_center(
                    &sh,
                    cfg,
                    RunOptions {
                        parallel: false,
                        ..Default::default()
                    },
                )
            });
        });
    }
    g.finish();
}

fn bench_uncertain_protocol(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol_uncertain");
    g.sample_size(10);
    let sh = uncertain_mixture(UncertainSpec {
        clusters: 3,
        nodes_per_site: 25,
        sites: 4,
        noise_nodes: 4,
        support: 3,
        jitter: 1.5,
        separation: 120.0,
        seed: 33,
    });
    g.bench_function("algo3_median", |b| {
        b.iter(|| {
            run_uncertain_median(
                &sh,
                UncertainConfig::new(3, 4),
                RunOptions {
                    parallel: false,
                    ..Default::default()
                },
            )
        });
    });
    g.bench_function("algo4_center_g", |b| {
        b.iter(|| {
            run_center_g(
                &sh,
                CenterGConfig::new(3, 4),
                RunOptions {
                    parallel: false,
                    ..Default::default()
                },
            )
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_median_protocol,
    bench_center_protocol,
    bench_uncertain_protocol
);
criterion_main!(benches);
