//! Streaming-layer benchmarks: ingest (merge-and-reduce and sliding
//! window), query solves on live instances, and a full continuous-mode
//! sync.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpc::prelude::*;

fn drift(points: usize, seed: u64) -> DriftStream {
    drifting_stream(DriftSpec {
        clusters: 4,
        points,
        drift: 0.5,
        seed,
        ..Default::default()
    })
}

fn bench_stream_ingest(c: &mut Criterion) {
    let mut g = c.benchmark_group("stream_ingest");
    g.sample_size(10);
    let data = drift(4000, 21);
    for &block in &[128usize, 512] {
        g.bench_with_input(BenchmarkId::new("merge_reduce", block), &block, |b, _| {
            b.iter(|| {
                let mut e = StreamEngine::new(2, StreamConfig::new(4, 16).block(block));
                for (_, p) in data.points.iter() {
                    e.push(p);
                }
                e.flush();
                e.live_points()
            });
        });
    }
    g.bench_function("sliding_window", |b| {
        b.iter(|| {
            let mut e = SlidingWindowEngine::new(2, 1024, StreamConfig::new(4, 16).block(128));
            for (_, p) in data.points.iter() {
                e.push(p);
            }
            e.live_points()
        });
    });
    g.finish();
}

fn bench_stream_solve(c: &mut Criterion) {
    let mut g = c.benchmark_group("stream_solve");
    g.sample_size(10);
    let data = drift(4000, 22);
    let mut e = StreamEngine::new(2, StreamConfig::new(4, 16).block(256));
    for (_, p) in data.points.iter() {
        e.push(p);
    }
    e.flush();
    g.bench_function("query_live_instance", |b| {
        b.iter(|| e.solve());
    });
    g.finish();
}

fn bench_continuous_sync(c: &mut Criterion) {
    let mut g = c.benchmark_group("stream_continuous");
    g.sample_size(10);
    let data = drift(3000, 23);
    g.bench_function("ingest_plus_syncs", |b| {
        b.iter(|| {
            let cfg = ContinuousConfig {
                stream: StreamConfig::new(4, 12).block(128),
                ..ContinuousConfig::new(4, 12)
            }
            .sync_every(1000);
            let mut fleet = ContinuousCluster::new(2, 4, cfg);
            for (i, p) in data.points.iter() {
                fleet.ingest(i % 4, p);
            }
            fleet.total_comm_bytes()
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_stream_ingest,
    bench_stream_solve,
    bench_continuous_sync
);
criterion_main!(benches);
