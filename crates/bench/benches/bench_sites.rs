//! E5 companion bench: the Table 1 "Local Time O(n_i^2)" column.
//!
//! Fixes the global n and grows s; the wall clock of the whole (serial)
//! protocol should drop ~1/s as per-site O((n/s)^2) work shrinks, until
//! the O((sk+t)^2) coordinator solve takes over.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpc::prelude::*;
// Benches measure the raw protocol paths, so they import the legacy
// entry points at their non-deprecated crate-level paths.
use dpc::core::run_distributed_median;

fn bench_site_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("site_scaling_fixed_n");
    g.sample_size(10);
    let n = 3000;
    let t = 16;
    let mix = gaussian_mixture(MixtureSpec {
        clusters: 4,
        inliers: n,
        outliers: t,
        seed: 55,
        ..Default::default()
    });
    for &s in &[2usize, 4, 8, 16] {
        let sh = partition(
            &mix.points,
            s,
            PartitionStrategy::Random,
            &mix.outlier_ids,
            5,
        );
        g.bench_with_input(BenchmarkId::new("median", s), &s, |b, _| {
            b.iter(|| {
                run_distributed_median(
                    &sh,
                    MedianConfig::new(4, t),
                    RunOptions {
                        parallel: false,
                        ..Default::default()
                    },
                )
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_site_scaling);
criterion_main!(benches);
