//! Micro-benchmarks of the centralized substrates: Gonzalez traversal,
//! Charikar greedy-disk, the Lagrangian bicriteria solver, and the hull /
//! allocation machinery (the per-site and coordinator inner loops behind
//! the "Local Time" column of Table 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpc::core::allocation::allocate_outliers;
use dpc::core::hull::{geometric_grid, ConvexProfile};
use dpc::prelude::*;

fn points(n: usize, seed: u64) -> PointSet {
    gaussian_mixture(MixtureSpec {
        clusters: 4,
        inliers: n,
        outliers: n / 50,
        seed,
        ..Default::default()
    })
    .points
}

fn bench_gonzalez(c: &mut Criterion) {
    let mut g = c.benchmark_group("gonzalez");
    for &n in &[1000usize, 4000] {
        let ps = points(n, 1);
        let ids: Vec<usize> = (0..ps.len()).collect();
        g.bench_with_input(BenchmarkId::new("prefix64", n), &n, |b, _| {
            let m = EuclideanMetric::new(&ps);
            b.iter(|| gonzalez(&m, &ids, 64, 0));
        });
    }
    g.finish();
}

fn bench_charikar(c: &mut Criterion) {
    let mut g = c.benchmark_group("charikar_center");
    g.sample_size(10);
    for &n in &[200usize, 400] {
        let ps = points(n, 2);
        let w = WeightedSet::unit(ps.len());
        g.bench_with_input(BenchmarkId::new("k4_t8", n), &n, |b, _| {
            let m = EuclideanMetric::new(&ps);
            b.iter(|| charikar_center(&m, &w, 4, 8.0, CenterParams::default()));
        });
    }
    g.finish();
}

fn bench_bicriteria(c: &mut Criterion) {
    let mut g = c.benchmark_group("median_bicriteria");
    g.sample_size(10);
    for &n in &[250usize, 500, 1000] {
        let ps = points(n, 3);
        let w = WeightedSet::unit(ps.len());
        g.bench_with_input(BenchmarkId::new("k4_t8", n), &n, |b, _| {
            let m = EuclideanMetric::new(&ps);
            b.iter(|| {
                median_bicriteria(
                    &m,
                    &w,
                    4,
                    8.0,
                    Objective::Median,
                    BicriteriaParams::default(),
                )
            });
        });
    }
    g.finish();
}

fn bench_hull_allocation(c: &mut Criterion) {
    // The coordinator-side O(st log st) allocation at realistic scales.
    let mut g = c.benchmark_group("allocation");
    for &(s, t) in &[(16usize, 256usize), (64, 1024)] {
        let profiles: Vec<ConvexProfile> = (0..s)
            .map(|i| {
                let grid = geometric_grid(t, 2.0);
                let pts: Vec<(usize, f64)> = grid
                    .iter()
                    .map(|&q| (q, 1e6 / ((q + i + 1) as f64)))
                    .collect();
                ConvexProfile::lower_hull(&pts)
            })
            .collect();
        g.bench_with_input(
            BenchmarkId::new("water_fill", format!("s{s}_t{t}")),
            &t,
            |b, _| {
                b.iter(|| allocate_outliers(&profiles, t, 2.0));
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_gonzalez,
    bench_charikar,
    bench_bicriteria,
    bench_hull_allocation
);
criterion_main!(benches);
