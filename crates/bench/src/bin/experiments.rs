//! `dpc-experiments` — regenerates every table row and figure of
//! *Distributed Partial Clustering* (SPAA 2017) as a measured experiment.
//!
//! The paper's evaluation artefacts are Tables 1–2 (communication / round /
//! runtime bounds) and Figure 1 (the compressed graph construction); each
//! subcommand below measures the corresponding claim on seeded synthetic
//! workloads and prints paper-style rows. See DESIGN.md §5 for the index
//! and EXPERIMENTS.md for recorded paper-vs-measured results.
//!
//! Usage:
//!   cargo run --release -p dpc-bench --bin dpc-experiments -- all
//!   cargo run --release -p dpc-bench --bin dpc-experiments -- e1 e4 e8
//!   cargo run --release -p dpc-bench --bin dpc-experiments -- s1   # streaming throughput
//!   cargo run --release -p dpc-bench --bin dpc-experiments -- g1   # sweep-driven grid
//!
//! Comparative rows (E1, E4, E11, G1) drive the typed `dpc::api::Job` /
//! `Sweep` front door; rows that inspect protocol internals the
//! `Artifact` deliberately does not carry (per-site compute times,
//! `shipped_outliers`) call the crate-level entry points directly.

use dpc::core::{run_distributed_median, subquadratic_median};
use dpc::prelude::*;
use dpc::uncertain::{run_center_g, run_uncertain_median};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `threads=N` forces the thread budget for the kernel rows; without it
    // they use one thread per available core, which on a single-core box
    // makes the "+threads" columns a copy of the serial ones.
    let threads: Option<usize> = args
        .iter()
        .find_map(|a| a.strip_prefix("threads=").and_then(|v| v.parse().ok()));
    let run_all =
        args.iter().any(|a| a == "all") || !args.iter().any(|a| !a.starts_with("threads="));
    let want = |id: &str| run_all || args.iter().any(|a| a == id);

    if want("e1") {
        e1_median_comm();
    }
    if want("e2") {
        e2_median_quality();
    }
    if want("e3") {
        e3_means();
    }
    if want("e4") {
        e4_center();
    }
    if want("e5") {
        e5_scaling();
    }
    if want("e6") {
        e6_subquadratic();
    }
    if want("e7") {
        e7_uncertain();
    }
    if want("e8") {
        e8_compressed_graph();
    }
    if want("e9") {
        e9_center_g();
    }
    if want("e10") {
        e10_delta_variant();
    }
    if want("e11") {
        e11_one_round();
    }
    if want("s1") {
        s1_stream_throughput();
    }
    if want("g1") {
        g1_sweep_grid();
    }
    if want("kernels") {
        b1_kernels(threads);
    }
    if want("transport") {
        t1_transport(threads);
    }
    if want("codec") {
        c1_codec();
    }
    if want("a1") {
        a1_grid();
    }
    if want("a2") {
        a2_partition();
    }
    if want("a3") {
        a3_lambda();
    }
}

fn header(id: &str, claim: &str) {
    println!("\n================================================================");
    println!("{id}: {claim}");
    println!("================================================================");
}

/// Validate-and-run for experiment rows (their configs are sound by
/// construction).
fn job_artifact(job: JobBuilder) -> Artifact {
    job.validate().expect("sound experiment config").run()
}

fn med_shards(s: usize, n: usize, t: usize, seed: u64) -> Vec<PointSet> {
    let mix = gaussian_mixture(MixtureSpec {
        clusters: 4,
        inliers: n,
        outliers: t,
        seed,
        ..Default::default()
    });
    partition(
        &mix.points,
        s,
        PartitionStrategy::Random,
        &mix.outlier_ids,
        seed ^ 0xabc,
    )
}

/// E1 — Table 1 "median O(1+1/ε)" row: total communication O((sk+t)B),
/// measured in bytes, vs the O((sk+st)B) 1-round baseline.
fn e1_median_comm() {
    header(
        "E1",
        "Table 1 median row: comm O((sk+t)B) for 2-round vs O((sk+st)B) 1-round",
    );
    let (k, t, n) = (4, 48, 1600);
    println!(
        "{:>4} {:>12} {:>12} {:>8} | t fixed at {t}, k={k}, n={n}",
        "s", "2round(B)", "1round(B)", "ratio"
    );
    for &s in &[2usize, 4, 8, 16, 32] {
        let data = Dataset::Shards(med_shards(s, n, t, 1000 + s as u64));
        let two = job_artifact(Job::median(k, t).data(data.clone()));
        let one = job_artifact(Job::one_round(Objective::Median, k, t).data(data));
        println!(
            "{:>4} {:>12} {:>12} {:>8.2}",
            s,
            two.upstream_bytes(),
            one.upstream_bytes(),
            one.upstream_bytes() as f64 / two.upstream_bytes() as f64
        );
    }
    println!(
        "\n{:>6} {:>12} {:>12} | s fixed at 8",
        "t", "2round(B)", "1round(B)"
    );
    for &t in &[8usize, 16, 32, 64, 128] {
        let data = Dataset::Shards(med_shards(8, n, t, 2000 + t as u64));
        let two = job_artifact(Job::median(k, t).data(data.clone()));
        let one = job_artifact(Job::one_round(Objective::Median, k, t).data(data));
        println!(
            "{:>6} {:>12} {:>12}",
            t,
            two.upstream_bytes(),
            one.upstream_bytes()
        );
    }
    println!("\npaper: 2-round comm has NO s·t term -> ratio grows with s; measured above.");
}

/// E2 — Table 1 median row, approximation column: O(1+1/ε) with (1+ε)t
/// outliers, vs centralized bicriteria and exact small instances.
fn e2_median_quality() {
    header(
        "E2",
        "Table 1 median row: (O(1+1/eps), 1+eps)-approximation quality",
    );
    let (k, t) = (4, 12);
    println!(
        "{:>6} {:>14} {:>14} {:>8}",
        "seed", "distributed", "centralized", "ratio"
    );
    let mut worst: f64 = 0.0;
    for seed in 0..6u64 {
        let sh = med_shards(6, 600, t, 3000 + seed);
        let out = run_distributed_median(&sh, MedianConfig::new(k, t), RunOptions::default());
        let (dist, _) = evaluate_on_full_data(&sh, &out.output.centers, 2 * t, Objective::Median);
        // centralized reference
        let all = merge_shards(&sh);
        let w = WeightedSet::unit(all.len());
        let m = EuclideanMetric::new(&all);
        let c = median_bicriteria(
            &m,
            &w,
            k,
            t as f64,
            Objective::Median,
            BicriteriaParams::default(),
        );
        let centers = all.subset(&c.centers);
        let (cen, _) = evaluate_on_full_data(
            std::slice::from_ref(&all),
            &centers,
            2 * t,
            Objective::Median,
        );
        let ratio = dist / cen.max(1e-9);
        worst = worst.max(ratio);
        println!("{:>6} {:>14.2} {:>14.2} {:>8.2}", seed, dist, cen, ratio);
    }
    println!("\npaper: constant-factor (paper bound 6/eps = 6 at eps=1, vs *optimal*);");
    println!("measured worst distributed/centralized ratio: {worst:.2}");

    // Exact reference on a tiny instance.
    let mix = gaussian_mixture(MixtureSpec {
        clusters: 2,
        inliers: 14,
        outliers: 2,
        ..Default::default()
    });
    let shards = partition(
        &mix.points,
        2,
        PartitionStrategy::Random,
        &mix.outlier_ids,
        5,
    );
    let out = run_distributed_median(&shards, MedianConfig::new(2, 2), RunOptions::default());
    let (dist, _) = evaluate_on_full_data(&shards, &out.output.centers, 4, Objective::Median);
    let all = merge_shards(&shards);
    let w = WeightedSet::unit(all.len());
    let m = EuclideanMetric::new(&all);
    let exact = exact_best(&m, &w, 2, 4.0, Objective::Median, 1_000_000);
    println!(
        "tiny-instance check: distributed {:.3} vs exact optimum {:.3} (ratio {:.2}, bound 6)",
        dist,
        exact.cost,
        dist / exact.cost.max(1e-9)
    );
}

/// E3 — Table 1 means row.
fn e3_means() {
    header(
        "E3",
        "Table 1 means row: same comm shape, squared objective",
    );
    let (k, t) = (4, 16);
    println!(
        "{:>4} {:>12} {:>14} {:>14}",
        "s", "bytes", "dist_cost", "central_cost"
    );
    for &s in &[4usize, 8, 16] {
        let sh = med_shards(s, 800, t, 4000 + s as u64);
        let out =
            run_distributed_median(&sh, MedianConfig::new(k, t).means(), RunOptions::default());
        let (dist, _) = evaluate_on_full_data(&sh, &out.output.centers, 2 * t, Objective::Means);
        let all = merge_shards(&sh);
        let w = WeightedSet::unit(all.len());
        let m = SquaredMetric::new(EuclideanMetric::new(&all));
        let c = median_bicriteria(
            &m,
            &w,
            k,
            t as f64,
            Objective::Median,
            BicriteriaParams::default(),
        );
        let centers = all.subset(&c.centers);
        let (cen, _) = evaluate_on_full_data(
            std::slice::from_ref(&all),
            &centers,
            2 * t,
            Objective::Means,
        );
        println!(
            "{:>4} {:>12} {:>14.1} {:>14.1}",
            s,
            out.stats.upstream_bytes(),
            dist,
            cen
        );
    }
    println!("\npaper: means matches median up to constants (relaxed triangle inequality).");
}

/// E4 — Table 1 center row + the improvement over Malkomes et al. \[19\].
fn e4_center() {
    header(
        "E4",
        "Table 1 center row: O((sk+t)B) vs [19]-style O((sk+st)B), cost parity",
    );
    let (k, t, n) = (4, 40, 2000);
    println!(
        "{:>4} {:>12} {:>12} {:>10} {:>10}",
        "s", "2round(B)", "1round(B)", "cost_2r", "cost_1r"
    );
    for &s in &[4usize, 8, 16, 32] {
        let data = Dataset::Shards(med_shards(s, n, t, 5000 + s as u64));
        let two = job_artifact(Job::center(k, t).data(data.clone()));
        let one = job_artifact(Job::one_round(Objective::Center, k, t).data(data));
        println!(
            "{:>4} {:>12} {:>12} {:>10.3} {:>10.3}",
            s,
            two.upstream_bytes(),
            one.upstream_bytes(),
            two.cost,
            one.cost
        );
    }
    println!("\npaper: Theorem 4.3 removes the st term of [19] at matching O(1) cost.");
}

/// E5 — Table 1 "Local Time" column: per-site work shrinks with s.
///
/// Sites are timed under sequential execution so wall-clock equals CPU
/// time (parallel threads oversubscribe cores and inflate per-site wall
/// time). NOTE: the paper's site solver is the O(n_i^2) primal-dual; our
/// Theorem 3.1 substitute is a sampled local search with O(n_i · C) work,
/// so the honest expectation here is critical path ~ 1/s (not 1/s^2) —
/// the *shape* "distribute to shrink per-site time" is what matters, and
/// the coordinator's (sk+t)^2 term growing with s is visible as well.
fn e5_scaling() {
    header(
        "E5",
        "Table 1 local-time column: per-site time falls with s; coordinator grows",
    );
    let (k, t, n) = (4, 24, 4000);
    println!(
        "{:>4} {:>10} {:>16} {:>16} {:>14}",
        "s", "n/s", "max_site_time", "sum_site_time", "coord_time"
    );
    for &s in &[2usize, 4, 8, 16] {
        let sh = med_shards(s, n, t, 6000 + s as u64);
        let out = run_distributed_median(
            &sh,
            MedianConfig::new(k, t),
            RunOptions {
                parallel: false,
                ..Default::default()
            },
        );
        let crit = out.stats.site_critical_path().as_secs_f64();
        let total = out.stats.total_site_compute().as_secs_f64();
        let coord = out.stats.coordinator_compute().as_secs_f64();
        println!(
            "{:>4} {:>10} {:>15.3}s {:>15.3}s {:>13.3}s",
            s,
            n / s,
            crit,
            total,
            coord
        );
    }
    println!("\nexpect: max_site_time ~ 1/s with our O(n_i·C) site solver (the paper's");
    println!("O(n_i^2) solver would fall ~1/s^2); coordinator time grows with sk+t.");
}

/// E6 — Theorem 3.10: subquadratic centralized (k,t)-median.
fn e6_subquadratic() {
    header(
        "E6",
        "Theorem 3.10: subquadratic centralized (k,t)-median crossover",
    );
    let k = 4;
    println!(
        "{:>7} {:>5} {:>14} {:>14} {:>10} {:>10}",
        "n", "t", "quad(ms)", "subq(ms)", "cost_q", "cost_s"
    );
    for &n in &[1000usize, 2000, 4000, 8000] {
        let t = ((n as f64).sqrt() as usize) / 2;
        let mix = gaussian_mixture(MixtureSpec {
            clusters: k,
            inliers: n,
            outliers: t,
            seed: 7000 + n as u64,
            ..Default::default()
        });
        let w = WeightedSet::unit(mix.points.len());
        let m = EuclideanMetric::new(&mix.points);
        let t0 = Instant::now();
        let quad = median_bicriteria(
            &m,
            &w,
            k,
            t as f64,
            Objective::Median,
            BicriteriaParams::default(),
        );
        let quad_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let sub = subquadratic_median(&mix.points, k, t, SubquadraticParams::default());
        let sub_ms = t1.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:>7} {:>5} {:>14.1} {:>14.1} {:>10.1} {:>10.1}",
            n + t,
            t,
            quad_ms,
            sub_ms,
            quad.cost,
            sub.cost
        );
    }
    println!("\npaper: O(t^2 + n^(4/3) k^2) vs O(n^2): the subq column's growth rate");
    println!("must be visibly smaller, with constant-factor cost parity.");
}

/// E7 — Table 1 uncertain median/means/center-pp row.
fn e7_uncertain() {
    header(
        "E7",
        "Table 1 uncertain row: comm as deterministic + O(n_i T) site time",
    );
    let t = 6;
    type ConfigMod = fn(UncertainConfig) -> UncertainConfig;
    let variants: [(&str, ConfigMod); 3] = [
        ("median", |c| c),
        ("means", |c| c.means()),
        ("center-pp", |c| c.center_pp()),
    ];
    for (name, mk) in variants {
        let sh = uncertain_mixture(UncertainSpec {
            clusters: 3,
            nodes_per_site: 40,
            sites: 4,
            noise_nodes: t,
            support: 4,
            jitter: 1.5,
            separation: 120.0,
            seed: 8000,
        });
        let cfg = mk(UncertainConfig::new(3, t));
        let out = run_uncertain_median(&sh, cfg, RunOptions::default());
        let cost = match name {
            "means" => estimate_expected_cost(&sh, &out.output.centers, 2 * t, true, false),
            "center-pp" => estimate_expected_cost(&sh, &out.output.centers, 2 * t, false, true),
            _ => estimate_expected_cost(&sh, &out.output.centers, 2 * t, false, false),
        };
        println!(
            "{:<10} bytes {:>8}  rounds {}  site_time {:>8.3}s  true_cost {:>10.2}",
            name,
            out.stats.total_bytes(),
            out.stats.num_rounds(),
            out.stats.site_critical_path().as_secs_f64(),
            cost
        );
    }
    // Comm vs n: must not grow.
    let small = uncertain_mixture(UncertainSpec {
        nodes_per_site: 20,
        seed: 8001,
        ..Default::default()
    });
    let big = uncertain_mixture(UncertainSpec {
        nodes_per_site: 80,
        seed: 8001,
        ..Default::default()
    });
    let cfg = UncertainConfig::new(3, 4);
    let a = run_uncertain_median(&small, cfg, RunOptions::default());
    let b = run_uncertain_median(&big, cfg, RunOptions::default());
    println!(
        "\ncomm at 20 nodes/site: {}B; at 80 nodes/site: {}B (paper: independent of n)",
        a.stats.upstream_bytes(),
        b.stats.upstream_bytes()
    );
}

/// E8 — Figure 1 / Lemmas 5.3–5.5: the compressed-graph sandwich.
fn e8_compressed_graph() {
    header(
        "E8",
        "Figure 1: clustering on the compressed graph ~ true uncertain cost",
    );
    println!(
        "{:>6} {:>12} {:>12} {:>14}",
        "seed", "graph_cost", "true_cost", "true/graph"
    );
    let mut worst: f64 = 0.0;
    for seed in 0..8u64 {
        let sh = uncertain_mixture(UncertainSpec {
            clusters: 3,
            nodes_per_site: 25,
            sites: 1,
            noise_nodes: 3,
            support: 3,
            jitter: 2.0,
            separation: 100.0,
            seed: 9000 + seed,
        });
        let all = &sh[0];
        let (graph, demands) = CompressedGraph::from_nodes(all, false);
        let sol = median_bicriteria(
            &graph,
            &demands,
            3,
            3.0,
            Objective::Median,
            BicriteriaParams {
                eps: 0.0,
                ..Default::default()
            },
        );
        let mut centers = PointSet::new(2);
        for &c in &sol.centers {
            centers.push(graph.y_coords(c));
        }
        let true_cost =
            estimate_expected_cost(std::slice::from_ref(all), &centers, 3, false, false);
        let ratio = true_cost / sol.cost.max(1e-9);
        worst = worst.max(ratio);
        println!(
            "{:>6} {:>12.3} {:>12.3} {:>14.3}",
            seed, sol.cost, true_cost, ratio
        );
    }
    println!("\npaper (Lemma 5.4): true cost <= 2 x graph cost. measured worst ratio: {worst:.3}");
}

/// E9 — Table 1 center-g row (Theorem 5.14).
fn e9_center_g() {
    header(
        "E9",
        "Table 1 center-g row: comm O(skB + tI + s logDelta); cost vs E[max]",
    );
    let t = 4;
    println!(
        "{:>9} {:>10} {:>10} {:>12} {:>12}",
        "support", "bytes", "rounds", "E[max]", "max-E"
    );
    for &support in &[2usize, 4, 8] {
        let sh = uncertain_mixture(UncertainSpec {
            clusters: 3,
            nodes_per_site: 15,
            sites: 3,
            noise_nodes: t,
            support,
            jitter: 1.5,
            separation: 100.0,
            seed: 10_000 + support as u64,
        });
        let out = run_center_g(&sh, CenterGConfig::new(3, t), RunOptions::default());
        let emax = estimate_center_g_cost(&sh, &out.output.centers, t, 1000, 13);
        let ppe = estimate_expected_cost(&sh, &out.output.centers, t, false, true);
        println!(
            "{:>9} {:>10} {:>10} {:>12.2} {:>12.2}",
            support,
            out.stats.total_bytes(),
            out.stats.num_rounds(),
            emax,
            ppe
        );
    }
    println!("\npaper: outliers ship full distributions (I ~ support x (B+8)) -> bytes");
    println!("grow with support size; E[max] >= max-E always (E and max do not commute).");

    // Table 2's 1-round center-g row: O(s(kB+tI) log Delta) — the full tau
    // sweep ships in one round (distance range assumed known a priori).
    let sh = uncertain_mixture(UncertainSpec {
        clusters: 3,
        nodes_per_site: 15,
        sites: 3,
        noise_nodes: t,
        support: 4,
        jitter: 1.5,
        separation: 100.0,
        seed: 10_500,
    });
    let mut lo = f64::INFINITY;
    let mut hi = 0.0f64;
    for s in &sh {
        if let Some((a, b)) = dpc::uncertain::truncated::distance_range(&s.ground) {
            lo = lo.min(a);
            hi = hi.max(b);
        }
    }
    let adaptive = run_center_g(&sh, CenterGConfig::new(3, t), RunOptions::default());
    let one = dpc::uncertain::run_center_g_one_round(
        &sh,
        CenterGConfig::new(3, t),
        lo,
        hi,
        RunOptions::default(),
    );
    let e_adaptive = estimate_center_g_cost(&sh, &adaptive.output.centers, t, 1000, 17);
    let e_one = estimate_center_g_cost(&sh, &one.output.centers, t, 1000, 17);
    println!("\n1-round vs adaptive (Table 2 last row):");
    println!(
        "  adaptive: {} rounds, {:>7}B, E[max] {:.2}",
        adaptive.stats.num_rounds(),
        adaptive.stats.total_bytes(),
        e_adaptive
    );
    println!(
        "  1-round:  {} rounds, {:>7}B, E[max] {:.2}  (ships the whole tau sweep)",
        one.stats.num_rounds(),
        one.stats.total_bytes(),
        e_one
    );
}

/// E10 — Theorem 3.8 / Table 2: the (2+eps+delta)t counts-only trade-off.
fn e10_delta_variant() {
    header(
        "E10",
        "Theorem 3.8: comm O(s/delta + skB) vs outlier blow-up (2+eps+delta)t",
    );
    let (k, t) = (4, 64);
    let sh = med_shards(8, 1600, t, 11_000);
    let ship = run_distributed_median(&sh, MedianConfig::new(k, t), RunOptions::default());
    let (ship_cost, _) = evaluate_on_full_data(&sh, &ship.output.centers, 2 * t, Objective::Median);
    println!(
        "{:<22} {:>10} {:>12} {:>12}",
        "variant", "bytes", "budget", "true_cost"
    );
    println!(
        "{:<22} {:>10} {:>12} {:>12.2}",
        "Alg.1 (ship outliers)",
        ship.stats.upstream_bytes(),
        2 * t,
        ship_cost
    );
    for &delta in &[0.125f64, 0.25, 0.5, 1.0] {
        let out = run_distributed_median(
            &sh,
            MedianConfig::new(k, t).counts_only(delta),
            RunOptions::default(),
        );
        let budget = ((2.0 + 1.0 + delta) * t as f64) as usize;
        let (cost, _) = evaluate_on_full_data(&sh, &out.output.centers, budget, Objective::Median);
        println!(
            "{:<22} {:>10} {:>12} {:>12.2}",
            format!("Thm 3.8 delta={delta}"),
            out.stats.upstream_bytes(),
            budget,
            cost
        );
    }
    println!("\npaper: counts-only drops the t B-sized points from the wire; smaller delta");
    println!("means finer grids (more hull bytes) but fewer excess outliers.");
}

/// E11 — Table 2's 1-round rows across all three objectives.
fn e11_one_round() {
    header("E11", "Table 2 1-round rows: O((sk+st)B) across objectives");
    let (k, t, s) = (4, 32, 8);
    let data = Dataset::Shards(med_shards(s, 1200, t, 12_000));
    let rows = [
        ("median 1-round", Job::one_round(Objective::Median, k, t)),
        ("median 2-round", Job::median(k, t)),
        ("means 1-round", Job::one_round(Objective::Means, k, t)),
        ("center 1-round", Job::one_round(Objective::Center, k, t)),
        ("center 2-round", Job::center(k, t)),
    ];
    println!("{:<22} {:>8} {:>12}", "protocol", "rounds", "bytes");
    for (label, job) in rows {
        let artifact = job_artifact(job.data(data.clone()));
        println!(
            "{:<22} {:>8} {:>12}",
            label,
            artifact.rounds,
            artifact.upstream_bytes()
        );
    }
    println!("\npaper: one fewer round costs a factor ~s on the t-term.");
}

/// G1 — the declarative experiment matrix: one `Sweep`, every
/// `k × t × transport` cell in parallel, one CSV table out.
fn g1_sweep_grid() {
    header(
        "G1",
        "sweep: k x t x transport grid through dpc::api::Sweep, CSV out",
    );
    let mix = gaussian_mixture(MixtureSpec {
        clusters: 8,
        inliers: 1600,
        outliers: 64,
        seed: 17_000,
        ..Default::default()
    });
    let sweep = Sweep::grid(Job::median(0, 0).sites(8).seed(21).points(mix.points))
        .k(&[4, 8])
        .t(&[16, 64])
        .transports(&[TransportKind::Channel, TransportKind::Tcp]);
    let t0 = Instant::now();
    let artifacts = sweep.run().expect("every cell validates");
    let elapsed = t0.elapsed().as_secs_f64();
    print!("{}", dpc::api::csv_table(&artifacts));
    println!(
        "\n{} cells in {elapsed:.2}s wall; channel/tcp byte parity: {}",
        artifacts.len(),
        artifacts
            .chunks(2)
            .all(|pair| pair[0].bytes == pair[1].bytes)
    );
}

/// S1 — streaming layer: ingest throughput (points/sec) and compression
/// vs block size, plus continuous-mode sync cost on a drifting stream.
fn s1_stream_throughput() {
    header(
        "S1",
        "dpc_stream: points/sec throughput, compression, and sync bytes",
    );
    let (k, t, n) = (4, 24, 20_000);
    let stream = drifting_stream(DriftSpec {
        clusters: k,
        points: n,
        drift: 0.6,
        burst_len: 6,
        burst_every: 2000,
        seed: 16_000,
        ..Default::default()
    });
    println!(
        "{:>7} {:>14} {:>12} {:>12} {:>12}",
        "block", "points/sec", "live_pts", "compress", "true_cost"
    );
    for &block in &[64usize, 128, 256, 512, 1024] {
        let mut engine = StreamEngine::new(2, StreamConfig::new(k, t).block(block));
        let t0 = Instant::now();
        for (_, p) in stream.points.iter() {
            engine.push(p);
        }
        engine.flush();
        let pps = n as f64 / t0.elapsed().as_secs_f64().max(1e-9);
        let sol = engine.solve();
        let (cost, _) = evaluate_on_full_data(
            std::slice::from_ref(&stream.points),
            &sol.centers,
            2 * t,
            Objective::Median,
        );
        println!(
            "{:>7} {:>14.0} {:>12} {:>11.0}x {:>12.1}",
            block,
            pps,
            sol.live_points,
            n as f64 / sol.live_points as f64,
            cost
        );
    }
    // Continuous mode: sync cost must stay flat as the prefix grows.
    let cfg = ContinuousConfig {
        stream: StreamConfig::new(k, t).block(256),
        ..ContinuousConfig::new(k, t)
    }
    .sync_every(4000);
    let mut fleet = ContinuousCluster::new(2, 4, cfg);
    let t0 = Instant::now();
    for (i, p) in stream.points.iter() {
        fleet.ingest(i % 4, p);
    }
    let pps = n as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    println!("\ncontinuous (4 sites, sync every 4000): {pps:.0} points/sec incl. syncs");
    for rec in &fleet.history {
        println!(
            "  sync at {:>6}: {:>6}B over {} rounds",
            rec.at,
            rec.stats.total_bytes(),
            rec.stats.num_rounds()
        );
    }
    println!("\nsmaller blocks: more frequent summarization (lower points/sec), more");
    println!("live summaries; sync bytes are flat in the prefix length (summaries only).");
}

/// B1 — the bulk-kernel speedup record: scalar per-pair loops vs the
/// blocked bulk layer vs bulk + threads, for the assignment shape every
/// protocol bottoms out in (nearest-center over a `k + t` candidate set,
/// the paper's `t ≫ k` regime), at d ∈ {4, 32, 128} on 50k points with
/// 64 candidates.
///
/// Writes `BENCH_kernels.json` at the repo root so the perf trajectory is
/// recorded in-tree; the acceptance bar is ≥ 3× bulk-over-scalar for the
/// Lloyd / Gonzalez assignment kernels at dim ≥ 32.
///
/// `threads_override` (the `threads=N` CLI arg) pins the "+threads"
/// columns to an explicit fan-out; by default they use one thread per
/// available core. The JSON records both the machine's parallelism and
/// the budget the run actually used, so a single-core recording is
/// distinguishable from a fan-out one.
fn b1_kernels(threads_override: Option<usize>) {
    use dpc::cluster::gonzalez_with;
    use dpc::metric::{CenterBlock, EuclideanMetric, NearestAssigner, ThreadBudget};

    header(
        "B1",
        "bulk kernels: scalar vs bulk vs bulk+threads, 50k points, k+t=64 candidates",
    );
    let budget = threads_override
        .map(ThreadBudget::new)
        .unwrap_or_else(ThreadBudget::available);
    const N: usize = 50_000;
    const CLUSTERS: usize = 16;
    /// Candidate-set size: `k + t` with `k = 16`, `t = 48` — the sites'
    /// Gonzalez-prefix / coordinator-instance shape of Table 1.
    const K: usize = 64;
    let dims = [4usize, 32, 128];

    // Best-of-3 wall clock in milliseconds.
    fn time_ms(mut f: impl FnMut()) -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t0 = Instant::now();
            f();
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        best
    }

    println!(
        "{:>5} {:>16} {:>12} {:>12} {:>14} {:>9} {:>9}",
        "dim", "kernel", "scalar_ms", "bulk_ms", "bulk+thr_ms", "speedup", "thr_x"
    );
    let mut rows = Vec::new();
    for &dim in &dims {
        let blobs = gaussian_blobs(BlobsSpec {
            clusters: CLUSTERS,
            points: N,
            outliers: 0,
            dim,
            imbalance: 0.5,
            seed: 0xbe7c + dim as u64,
            ..Default::default()
        });
        let ps = &blobs.points;
        let ids: Vec<usize> = (0..ps.len()).collect();
        let m = EuclideanMetric::new(ps);

        // The candidate set: the first k + t Gonzalez selections — exactly
        // what Algorithm 2 sites attach their points to before shipping.
        let prefix = gonzalez_with(&m, &ids, K, 0, ThreadBudget::serial()).order;

        // Lloyd-style assignment: scalar per-pair sq_dist_to vs CenterBlock.
        let centroids: Vec<Vec<f64>> = prefix.iter().map(|&c| ps.point(c).to_vec()).collect();
        let scalar_lloyd = time_ms(|| {
            let mut acc = 0.0;
            for i in 0..ps.len() {
                let mut best = f64::INFINITY;
                for c in &centroids {
                    let d = ps.sq_dist_to(i, c);
                    if d < best {
                        best = d;
                    }
                }
                acc += best;
            }
            std::hint::black_box(acc);
        });
        let block = CenterBlock::from_rows(dim, &centroids);
        let bulk_lloyd = time_ms(|| {
            std::hint::black_box(block.assign_sq(ps, &ids, ThreadBudget::serial()));
        });
        let thr_lloyd = time_ms(|| {
            std::hint::black_box(block.assign_sq(ps, &ids, budget));
        });

        // Gonzalez-prefix assignment over the Metric (Algorithm 2's
        // point-attachment step, historically a per-pair `nearest` loop).
        let scalar_gonz = time_ms(|| {
            let mut acc = 0.0;
            for i in 0..ps.len() {
                let mut best = f64::INFINITY;
                for &c in &prefix {
                    let d = ps.dist(i, c);
                    if d < best {
                        best = d;
                    }
                }
                acc += best;
            }
            std::hint::black_box(acc);
        });
        let assigner = NearestAssigner::new(&m);
        let bulk_gonz = time_ms(|| {
            std::hint::black_box(assigner.assign(&ids, &prefix));
        });
        let thr_assigner = NearestAssigner::with_threads(&m, budget);
        let thr_gonz = time_ms(|| {
            std::hint::black_box(thr_assigner.assign(&ids, &prefix));
        });

        // Gonzalez relax traversal (informational — the partial-distance
        // hook prunes less here because the incumbent tightens over steps).
        // The baseline is the pre-kernel-layer traversal verbatim: fused
        // relax + farthest scan with assignment tracking, so the ratio
        // measures the kernel layer and not dropped bookkeeping.
        let scalar_relax = time_ms(|| {
            let mut best = vec![f64::INFINITY; N];
            let mut pos = vec![0usize; N];
            let mut chosen = 0usize;
            for step in 0..CLUSTERS {
                let mut far = (0usize, -1.0f64);
                let zipped = best.iter_mut().zip(pos.iter_mut()).zip(&ids);
                for (i, ((b, p), &id)) in zipped.enumerate() {
                    let d = ps.dist(id, ids[chosen]);
                    if d < *b {
                        *b = d;
                        *p = step;
                    }
                    if *b > far.1 {
                        far = (i, *b);
                    }
                }
                chosen = far.0;
            }
            std::hint::black_box((&best, &pos));
        });
        let bulk_relax = time_ms(|| {
            std::hint::black_box(dpc::cluster::gonzalez(&m, &ids, CLUSTERS, 0));
        });
        let thr_relax = time_ms(|| {
            std::hint::black_box(gonzalez_with(&m, &ids, CLUSTERS, 0, budget));
        });

        // Lloyd iteration ≥ 2: the triangle-inequality path. The
        // BoundedAssigner is seeded by a full pass, then timed against a
        // slightly drifted center set (alternating between two offset
        // copies so every timed call sees a real non-zero drift, like a
        // settling Lloyd run). Baseline ("scalar" column) is the fresh
        // blocked pass every pre-v2 iteration paid; bulk / bulk+thr are
        // the bounded pass at serial / recorded budget. `skip_rate` is
        // the fraction of queries certified by the bounds (measured via
        // the dpc_obs counters on an untimed pass).
        use dpc::metric::{Assignment, BoundedAssigner};
        use dpc::obs::{Collector, Counter};
        use std::sync::Arc;
        let drifted: Vec<Vec<Vec<f64>>> = (0..2)
            .map(|s| {
                centroids
                    .iter()
                    .map(|c| c.iter().map(|&x| x + 1e-3 * (s as f64 + 1.0)).collect())
                    .collect()
            })
            .collect();
        let iter2_fresh = time_ms(|| {
            let b = CenterBlock::from_rows(dim, &drifted[0]);
            std::hint::black_box(b.assign_sq(ps, &ids, ThreadBudget::serial()));
        });
        let mut bounded = BoundedAssigner::new();
        let mut bout = Assignment::default();
        bounded.assign_sq(ps, &ids, &centroids, ThreadBudget::serial(), &mut bout);
        let mut flip = 0usize;
        let iter2_bounded = time_ms(|| {
            flip ^= 1;
            bounded.assign_sq(ps, &ids, &drifted[flip], ThreadBudget::serial(), &mut bout);
        });
        let mut bounded_thr = BoundedAssigner::new();
        bounded_thr.assign_sq(ps, &ids, &centroids, budget, &mut bout);
        let iter2_thr = time_ms(|| {
            flip ^= 1;
            bounded_thr.assign_sq(ps, &ids, &drifted[flip], budget, &mut bout);
        });
        let col = Arc::new(Collector::new());
        let mut counted = BoundedAssigner::with_recorder(col.handle());
        counted.assign_sq(ps, &ids, &centroids, ThreadBudget::serial(), &mut bout);
        let before = col.snapshot().counters;
        counted.assign_sq(ps, &ids, &drifted[0], ThreadBudget::serial(), &mut bout);
        let after = col.snapshot().counters;
        let skips = after[Counter::BoundSkips.index()] - before[Counter::BoundSkips.index()];
        let queries =
            after[Counter::KernelQueries.index()] - before[Counter::KernelQueries.index()];
        let skip_rate = skips as f64 / queries.max(1) as f64;
        println!(
            "{:>5} {:>16} {:>12.2} {:>12.2} {:>14.2} {:>8.2}x {:>8.2}x  (skip_rate {:.3})",
            dim,
            "lloyd_iter2",
            iter2_fresh,
            iter2_bounded,
            iter2_thr,
            iter2_fresh / iter2_bounded,
            iter2_fresh / iter2_thr,
            skip_rate
        );
        rows.push(format!(
            concat!(
                "{{\"dim\":{},\"kernel\":\"lloyd_iter2\",\"n\":{},\"candidates\":{},",
                "\"scalar_ms\":{:.3},\"bulk_ms\":{:.3},\"bulk_threads_ms\":{:.3},",
                "\"speedup_bulk\":{:.3},\"speedup_threads\":{:.3},\"skip_rate\":{:.4}}}"
            ),
            dim,
            N,
            K,
            iter2_fresh,
            iter2_bounded,
            iter2_thr,
            iter2_fresh / iter2_bounded,
            iter2_fresh / iter2_thr,
            skip_rate
        ));

        for (kernel, scalar, bulk, thr) in [
            ("lloyd_assign", scalar_lloyd, bulk_lloyd, thr_lloyd),
            ("gonzalez_assign", scalar_gonz, bulk_gonz, thr_gonz),
            ("gonzalez_relax", scalar_relax, bulk_relax, thr_relax),
        ] {
            println!(
                "{:>5} {:>16} {:>12.2} {:>12.2} {:>14.2} {:>8.2}x {:>8.2}x",
                dim,
                kernel,
                scalar,
                bulk,
                thr,
                scalar / bulk,
                scalar / thr
            );
            rows.push(format!(
                concat!(
                    "{{\"dim\":{},\"kernel\":\"{}\",\"n\":{},\"candidates\":{},",
                    "\"scalar_ms\":{:.3},\"bulk_ms\":{:.3},\"bulk_threads_ms\":{:.3},",
                    "\"speedup_bulk\":{:.3},\"speedup_threads\":{:.3}}}"
                ),
                dim,
                kernel,
                N,
                K,
                scalar,
                bulk,
                thr,
                scalar / bulk,
                scalar / thr
            ));
        }
    }

    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\"experiment\":\"kernels\",\"available_threads\":{},\"used_threads\":{},\"rows\":[{}]}}\n",
        available,
        budget.get(),
        rows.join(",")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nrecorded -> BENCH_kernels.json"),
        Err(e) => println!("\ncould not write BENCH_kernels.json: {e}"),
    }
    println!("acceptance: bulk speedup >= 3x for lloyd/gonzalez assignment at dim >= 32.");
}

/// T1 — the transport-layer record: end-to-end wall clock of the same
/// 2-round median protocol on the channel-worker, loopback-TCP, and
/// multiplexed event-loop backends as the fleet grows from 16 to 4096
/// sites, crossed with simulated link latency.
///
/// Writes `BENCH_transport.json` at the repo root (the companion of
/// `BENCH_kernels.json`) so the transport-overhead trajectory is
/// recorded in-tree. Byte charges are asserted identical across
/// backends — only time may differ. The per-site channel and tcp
/// backends pay a thread (and, for tcp, a socket pair) per site every
/// run; mux keeps the tcp site workers but multiplexes the coordinator
/// side onto `used_threads` poll(2) event-loop shards, which is what
/// lets the 4096-site rows fit in one process without a 4096-thread
/// coordinator fan-out.
fn t1_transport(threads_override: Option<usize>) {
    header(
        "T1",
        "transport backends: channel workers vs loopback TCP vs mux event loops",
    );
    let threads = threads_override.unwrap_or(1);
    // Small summaries (k + t = 6 points per site) keep coordinator-side
    // solve time flat, so the grid isolates transport cost.
    let (k, t) = (2usize, 4usize);

    let configure = |job: JobBuilder, backend: &str| match backend {
        "tcp" => job.transport(TransportKind::Tcp),
        "mux" => job.transport(TransportKind::Mux),
        _ => job,
    };

    let mut rows = Vec::new();
    println!(
        "{:>6} {:>8} {:>8} {:>10} {:>10} {:>8} {:>11} | full-run wall clock",
        "sites", "backend", "lat_ms", "wall_ms", "bytes", "rounds", "network_ms"
    );
    for &sites in &[16usize, 64, 256, 1024, 4096] {
        // At least 4 points per site so every shard can form a summary.
        let n = (sites * 4).max(4096);
        let data = Dataset::Shards(med_shards(sites, n, t, 18_000 + sites as u64));
        // Best-of-3 even at 4096 sites: with abortive worker-side close
        // (no TIME_WAIT churn between runs) a full spawn-run-teardown
        // cycle stays near a second.
        let reps = 3;
        for &lat_ms in &[0u64, 1, 5] {
            let link = LinkModel::new(std::time::Duration::from_millis(lat_ms), 1e9);
            let mut base_bytes = None;
            for backend in ["channel", "tcp", "mux"] {
                let job = || {
                    configure(
                        Job::median(k, t)
                            .threads(threads)
                            .link(link)
                            .data(data.clone()),
                        backend,
                    )
                };
                let mut best = f64::INFINITY;
                let mut artifact = None;
                for _ in 0..reps {
                    let t0 = Instant::now();
                    let a = job_artifact(job());
                    best = best.min(t0.elapsed().as_secs_f64() * 1e3);
                    artifact = Some(a);
                }
                let artifact = artifact.expect("at least one repetition");
                assert_eq!(
                    *base_bytes.get_or_insert(artifact.bytes),
                    artifact.bytes,
                    "byte charges must be backend-independent"
                );
                println!(
                    "{:>6} {:>8} {:>8} {:>10.2} {:>10} {:>8} {:>11.3}",
                    sites,
                    backend,
                    lat_ms,
                    best,
                    artifact.bytes,
                    artifact.rounds,
                    artifact.network_ms
                );
                rows.push(format!(
                    concat!(
                        "{{\"sites\":{},\"backend\":\"{}\",\"latency_ms\":{},",
                        "\"wall_ms\":{:.3},\"bytes\":{},\"rounds\":{},\"network_ms\":{:.3}}}"
                    ),
                    sites,
                    backend,
                    lat_ms,
                    best,
                    artifact.bytes,
                    artifact.rounds,
                    artifact.network_ms
                ));
            }
        }
    }

    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\"experiment\":\"transport\",\"available_threads\":{},\"used_threads\":{},\"rows\":[{}]}}\n",
        available,
        threads,
        rows.join(",")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_transport.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nrecorded -> BENCH_transport.json"),
        Err(e) => println!("\ncould not write BENCH_transport.json: {e}"),
    }
    println!("expect: bytes and network_ms backend-identical at every cell;");
    println!("network_ms scales linearly in latency; at >= 1024 sites the mux");
    println!("rows track or beat tcp (same wire, fewer blocking round trips).");
}

/// C1 — the bicriteria compression frontier: wire bytes vs clustering
/// objective for every codec, on clustered workloads at two dimensions.
fn c1_codec() {
    header(
        "C1",
        "wire codecs: bytes vs objective frontier for median/means at dim 2 and 16",
    );
    let (k, t, sites, n) = (4usize, 24usize, 4usize, 1200usize);

    let mut rows = Vec::new();
    let mut frontier_met = false;
    println!(
        "{:>9} {:>4} {:>9} {:>9} {:>9} {:>7} {:>10} | ratio = raw/compressed",
        "objective", "dim", "encoding", "bytes", "raw", "ratio", "delta_pct"
    );
    for dim in [2usize, 16] {
        let mix = gaussian_blobs(BlobsSpec {
            clusters: k,
            points: n,
            outliers: t,
            dim,
            seed: 41_000 + dim as u64,
            ..Default::default()
        });
        let shards = partition(
            &mix.points,
            sites,
            PartitionStrategy::Random,
            &mix.outlier_ids,
            77,
        );
        let data = Dataset::Shards(shards);
        for objective in ["median", "means"] {
            let job = |enc: Encoding| {
                let b = match objective {
                    "means" => Job::means(k, t),
                    _ => Job::median(k, t),
                };
                b.data(data.clone()).encoding(enc)
            };
            let raw = job_artifact(job(Encoding::Raw));
            for enc in Encoding::ALL {
                let a = if enc == Encoding::Raw {
                    raw.clone()
                } else {
                    job_artifact(job(enc))
                };
                let raw_bytes = a.bytes_raw.unwrap_or(a.bytes);
                assert_eq!(
                    raw_bytes, raw.bytes,
                    "{objective}/dim{dim}/{enc}: raw byte totals must match the raw run"
                );
                let ratio = raw_bytes as f64 / a.bytes as f64;
                let delta = a.quality_delta.unwrap_or(0.0);
                // The frontier target: some lossy or reference mode buys
                // >= 1.5x fewer bytes for <= 5% objective movement.
                if enc != Encoding::Raw && ratio >= 1.5 && delta.abs() <= 0.05 {
                    frontier_met = true;
                }
                println!(
                    "{:>9} {:>4} {:>9} {:>9} {:>9} {:>7.2} {:>+10.3}",
                    objective,
                    dim,
                    enc.name(),
                    a.bytes,
                    raw_bytes,
                    ratio,
                    delta * 100.0
                );
                rows.push(format!(
                    concat!(
                        "{{\"objective\":\"{}\",\"dim\":{},\"encoding\":\"{}\",",
                        "\"bytes\":{},\"bytes_raw\":{},\"ratio\":{:.4},",
                        "\"cost\":{:.6},\"quality_delta\":{:.6}}}"
                    ),
                    objective,
                    dim,
                    enc.name(),
                    a.bytes,
                    raw_bytes,
                    ratio,
                    a.cost,
                    delta
                ));
            }
        }
    }

    let json = format!(
        "{{\"experiment\":\"codec\",\"frontier_target_met\":{},\"rows\":[{}]}}\n",
        frontier_met,
        rows.join(",")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_codec.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nrecorded -> BENCH_codec.json"),
        Err(e) => println!("\ncould not write BENCH_codec.json: {e}"),
    }
    assert!(
        frontier_met,
        "no lossy/reference mode reached 1.5x bytes at <= 5% objective delta"
    );
    println!("expect: f32/f16 ratios grow with dim (coords dominate at dim 16);");
    println!("delta/rlz stay lossless (delta_pct exactly 0) at modest ratios.");
}

/// A1 — ablation: geometric grid resolution rho.
fn a1_grid() {
    header(
        "A1",
        "ablation: grid ratio rho — site time vs quality vs Sigma t_i",
    );
    let (k, t) = (4, 48);
    let sh = med_shards(6, 900, t, 13_000);
    println!(
        "{:>6} {:>12} {:>14} {:>12} {:>10}",
        "rho", "bytes", "site_time(s)", "true_cost", "sum_ti"
    );
    for &rho in &[1.25f64, 1.5, 2.0, 4.0] {
        let mut cfg = MedianConfig::new(k, t);
        cfg.rho = rho;
        let out = run_distributed_median(&sh, cfg, RunOptions::default());
        let (cost, _) = evaluate_on_full_data(&sh, &out.output.centers, 2 * t, Objective::Median);
        println!(
            "{:>6} {:>12} {:>14.3} {:>12.2} {:>10}",
            rho,
            out.stats.upstream_bytes(),
            out.stats.site_critical_path().as_secs_f64(),
            cost,
            out.output.shipped_outliers
        );
    }
    println!("\nfiner grids: more local solves (time) and hull bytes, tighter Sigma t_i.");
}

/// A2 — ablation: partition adversariality.
fn a2_partition() {
    header("A2", "ablation: partition strategy robustness");
    let (k, t) = (4, 16);
    let mix = gaussian_mixture(MixtureSpec {
        clusters: k,
        inliers: 800,
        outliers: t,
        seed: 14_000,
        ..Default::default()
    });
    println!(
        "{:>14} {:>12} {:>12} {:>10}",
        "strategy", "bytes", "true_cost", "sum_ti"
    );
    for strat in [
        PartitionStrategy::Random,
        PartitionStrategy::RoundRobin,
        PartitionStrategy::ByBlock,
        PartitionStrategy::OutlierSkew,
    ] {
        let sh = partition(&mix.points, 6, strat, &mix.outlier_ids, 77);
        let out = run_distributed_median(&sh, MedianConfig::new(k, t), RunOptions::default());
        let (cost, _) = evaluate_on_full_data(&sh, &out.output.centers, 2 * t, Objective::Median);
        println!(
            "{:>14} {:>12} {:>12.2} {:>10}",
            format!("{strat:?}"),
            out.stats.upstream_bytes(),
            cost,
            out.output.shipped_outliers
        );
    }
    println!("\nthe allocation must route the outlier budget to the skewed site.");
}

/// A3 — ablation: lambda-search iterations in the Theorem 3.1 substitute.
fn a3_lambda() {
    header(
        "A3",
        "ablation: lambda-bisection iterations vs quality/time",
    );
    let (k, t) = (4, 16);
    let sh = med_shards(6, 700, t, 15_000);
    println!("{:>8} {:>14} {:>12}", "iters", "site_time(s)", "true_cost");
    for &iters in &[4usize, 8, 16, 32] {
        let mut cfg = MedianConfig::new(k, t);
        cfg.lambda_iters = iters;
        let out = run_distributed_median(&sh, cfg, RunOptions::default());
        let (cost, _) = evaluate_on_full_data(&sh, &out.output.centers, 2 * t, Objective::Median);
        println!(
            "{:>8} {:>14.3} {:>12.2}",
            iters,
            out.stats.site_critical_path().as_secs_f64(),
            cost
        );
    }
    println!("\ngeometric bisection: ~12 iterations suffice across 12 orders of magnitude.");
}
