//! Experiment harness support (see the `dpc-experiments` binary and the
//! Criterion benches); the library surface is intentionally minimal.
