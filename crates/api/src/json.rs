//! A minimal JSON reader for [`crate::Artifact::from_json`].
//!
//! The parser and writer helpers now live in [`dpc_obs::json`] so the
//! trace writer and the artifact schema share one implementation (the
//! vendored `serde` stand-in only provides no-op derives, so both are
//! hand-rolled). This module re-exports it to keep the `dpc_api::json`
//! path stable for existing callers.

pub use dpc_obs::json::*;
