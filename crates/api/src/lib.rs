//! One front door for every protocol in the workspace.
//!
//! The paper's value is comparative — 2-round vs 1-round, `(k,t)`-median
//! vs means vs center, exact-`t` vs `(1+ε)t`, batch vs continuous — and
//! before this crate each comparison went through a different ad-hoc
//! entry point with its own config struct. `dpc_api` replaces that with
//! one typed pipeline:
//!
//! ```text
//! Job (what to run)  ──fluent──▶ JobBuilder (how to run it)
//!        ──validate()──▶ ValidJob (typed ConfigError / ConfigWarning)
//!        ──run()──▶ Artifact (solution + comm stats + one JSON schema)
//! ```
//!
//! * [`Job`] — every protocol behind one enum: Algorithm 1 median/means,
//!   Algorithm 2 center, the 1-round baselines, uncertain median
//!   (Algorithm 3) and center-g (Algorithm 4), streaming (insertion-only,
//!   sliding-window, continuous distributed), and the subquadratic
//!   centralized corollary.
//! * [`JobBuilder`] — fluent knobs with the historical defaults:
//!   `Job::median(5, 20).eps(0.5).transport(TransportKind::Tcp)`.
//! * [`JobBuilder::validate`] — hard [`ConfigError`]s for configurations
//!   that cannot run correctly, structured [`ConfigWarning`]s for legal
//!   ones where a knob has no effect.
//! * [`Artifact`] — the unified result: solution, per-round per-site byte
//!   accounting, simulated network time, and one serde-able JSON schema
//!   ([`ARTIFACT_SCHEMA`]) shared by the CLI, benches and sweep tables.
//! * [`Sweep`] — cartesian parameter grids (`k × t × transport × …`)
//!   expanded into jobs and executed on scoped threads, plus
//!   [`csv_table`] / [`json_table`] writers.
//!
//! ## Quickstart
//!
//! ```
//! use dpc_api::Job;
//! use dpc_workloads::{gaussian_mixture, MixtureSpec};
//!
//! let mix = gaussian_mixture(MixtureSpec { inliers: 200, outliers: 5, ..Default::default() });
//! let artifact = Job::median(5, 5)
//!     .sites(4)
//!     .points(mix.points)
//!     .validate()
//!     .expect("config is sound")
//!     .run();
//! assert_eq!(artifact.rounds, 2);
//! assert!(artifact.bytes > 0 && artifact.cost.is_finite());
//! // One schema everywhere: serialize, ship, read back.
//! let back = dpc_api::Artifact::from_json(&artifact.to_json()).unwrap();
//! assert_eq!(back.centers, artifact.centers);
//! ```
//!
//! The legacy free functions (`run_distributed_median` & co.) still work
//! and are what this crate calls under the hood — job-driven runs are
//! byte-identical to them — but new code should come through [`Job`];
//! the facade re-exports of those functions are deprecated.

pub mod artifact;
pub mod data;
pub mod error;
pub mod job;
pub mod json;
pub mod sweep;

pub use artifact::{Artifact, RoundBreakdown, ARTIFACT_SCHEMA};
pub use data::Dataset;
pub use error::{ConfigError, ConfigWarning};
pub use job::{Job, JobBuilder, StreamSession, TraceFormat, ValidJob};
pub use sweep::{csv_table, json_table, Sweep};
