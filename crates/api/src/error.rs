//! Typed configuration diagnostics.
//!
//! [`crate::JobBuilder::validate`] splits configuration smells into two
//! severities: [`ConfigError`] for configurations that cannot run
//! correctly (the run is refused), and [`ConfigWarning`] for legal
//! configurations where some knob has no effect (the run proceeds, the
//! caller decides whether to surface the warning). Both are
//! `#[non_exhaustive]` enums so future PRs can add diagnostics without
//! breaking matches downstream.

use std::fmt;

/// A configuration the API refuses to run.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A count parameter that must be positive was zero.
    ZeroParam {
        /// Which parameter (`"k"`, `"sites"`, `"block"`, `"sync_every"`,
        /// `"parallelism"`).
        param: &'static str,
    },
    /// A numeric parameter was NaN or infinite.
    NonFinite {
        /// Which parameter.
        param: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A numeric parameter that must be non-negative was negative.
    Negative {
        /// Which parameter.
        param: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The grid/allocation ratio `rho` must exceed 1.
    RhoNotAboveOne {
        /// The offending value.
        value: f64,
    },
    /// `eps = 0` on a streaming job: queries become exact-`t`, so a
    /// single burst of more than `t` far outliers is unexcludable and
    /// hijacks centers. Formerly a CLI warning; now refused outright.
    ExactOutlierQueries,
    /// A sliding window shorter than one block can never hold a summary.
    WindowBelowBlock {
        /// Configured window length in points.
        window: u64,
        /// Configured block size.
        block: usize,
    },
    /// The continuous sync protocol re-runs Algorithm 1, which exists for
    /// the median and means objectives only.
    CenterObjectiveInContinuous,
    /// The job needs an input dataset and none was attached.
    MissingData {
        /// The job that needs data.
        job: &'static str,
    },
    /// The attached dataset kind does not match the job (point protocols
    /// need points, uncertain protocols need nodes).
    DataKindMismatch {
        /// The job.
        job: &'static str,
        /// What the job needs (`"points"` or `"uncertain nodes"`).
        expects: &'static str,
    },
    /// More centers requested than input items.
    KExceedsInput {
        /// Requested number of centers.
        k: usize,
        /// Input size.
        n: usize,
        /// What the items are (`"points"` or `"nodes"`).
        unit: &'static str,
    },
    /// The attached dataset has no items.
    EmptyData,
    /// The one-round center-g variant needs a valid a-priori distance
    /// range `0 < d_min <= d_max`, both finite.
    InvalidDistanceRange {
        /// Supplied lower bound.
        d_min: f64,
        /// Supplied upper bound.
        d_max: f64,
    },
    /// A sweep axis was given an empty value list.
    EmptySweepAxis {
        /// Which axis.
        axis: &'static str,
    },
    /// The dropout probability must lie in `[0, 1)` — a probability of 1
    /// deterministically kills every site in round 0.
    DropoutOutOfRange {
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroParam { param } => write!(f, "{param} must be positive"),
            ConfigError::NonFinite { param, value } => {
                write!(f, "{param} must be finite, got {value}")
            }
            ConfigError::Negative { param, value } => {
                write!(f, "{param} must be non-negative, got {value}")
            }
            ConfigError::RhoNotAboveOne { value } => {
                write!(f, "rho must be greater than 1, got {value}")
            }
            ConfigError::ExactOutlierQueries => write!(
                f,
                "eps = 0 on a streaming job makes queries exact-t: a single burst of \
                 more than t far outliers becomes unexcludable and will hijack \
                 centers; use eps > 0"
            ),
            ConfigError::WindowBelowBlock { window, block } => write!(
                f,
                "window of {window} points is shorter than one block of {block}"
            ),
            ConfigError::CenterObjectiveInContinuous => write!(
                f,
                "continuous sync re-runs Algorithm 1 (median/means only); \
                 the center objective is not supported"
            ),
            ConfigError::MissingData { job } => {
                write!(
                    f,
                    "'{job}' needs an input dataset; attach one before running"
                )
            }
            ConfigError::DataKindMismatch { job, expects } => {
                write!(f, "'{job}' expects {expects} as input")
            }
            ConfigError::KExceedsInput { k, n, unit } => {
                write!(f, "k={k} exceeds the {n} input {unit}")
            }
            ConfigError::EmptyData => write!(f, "the attached dataset is empty"),
            ConfigError::InvalidDistanceRange { d_min, d_max } => write!(
                f,
                "one-round center-g needs 0 < d_min <= d_max (finite), got ({d_min}, {d_max})"
            ),
            ConfigError::EmptySweepAxis { axis } => {
                write!(f, "sweep axis '{axis}' has no values")
            }
            ConfigError::DropoutOutOfRange { value } => {
                write!(f, "dropout probability must lie in [0, 1), got {value}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// A legal configuration where some knob has no effect.
///
/// Warnings are collected by [`crate::JobBuilder::validate`] and carried
/// on the [`crate::ValidJob`]; they never block a run.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigWarning {
    /// Transport or link-model flags were set, but the job never drives
    /// the protocol runtime (centralized and single-machine-streaming
    /// jobs move no messages).
    TransportUnused {
        /// The job the flags were set on.
        job: &'static str,
    },
    /// A builder knob was set on a job kind it does not apply to
    /// (e.g. a block size on a batch protocol).
    KnobUnused {
        /// The knob (builder method name).
        knob: &'static str,
        /// The job it was set on.
        job: &'static str,
    },
    /// An explicit site count was set alongside pre-sharded data; the
    /// shard count wins.
    SitesIgnoredForShards {
        /// The explicitly configured site count.
        sites: usize,
        /// The number of shards actually used.
        shards: usize,
    },
    /// A trace was requested on a job that never drives the protocol
    /// runtime: the trace file will carry only the run span and kernel
    /// counters — no rounds, no transfers, no fault events.
    TraceWithoutProtocol {
        /// The job the trace was requested on.
        job: &'static str,
    },
    /// A trace format was chosen but no trace path was set, so nothing
    /// will be written.
    TraceFormatWithoutTrace,
    /// The mux transport was given more event-loop shards (via the
    /// thread budget) than there are sites; the extra shards own no
    /// connections and idle.
    MuxShardsExceedSites {
        /// The configured shard budget.
        shards: usize,
        /// The number of sites the job will actually run.
        sites: usize,
    },
}

impl fmt::Display for ConfigWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigWarning::TransportUnused { job } => write!(
                f,
                "transport/link settings have no effect on '{job}' (no protocol runs)"
            ),
            ConfigWarning::KnobUnused { knob, job } => {
                write!(f, "'{knob}' has no effect on '{job}'")
            }
            ConfigWarning::SitesIgnoredForShards { sites, shards } => write!(
                f,
                "explicit sites = {sites} ignored: the dataset is pre-sharded into {shards}"
            ),
            ConfigWarning::TraceWithoutProtocol { job } => write!(
                f,
                "'{job}' runs no protocol rounds; the trace will carry only the \
                 run span and kernel counters"
            ),
            ConfigWarning::TraceFormatWithoutTrace => write!(
                f,
                "a trace format was set but no trace path; nothing will be written \
                 (add a trace path)"
            ),
            ConfigWarning::MuxShardsExceedSites { shards, sites } => write!(
                f,
                "mux transport: {shards} event-loop shards exceed {sites} sites; \
                 extra shards will idle"
            ),
        }
    }
}
