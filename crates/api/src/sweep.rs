//! Cartesian parameter sweeps: one declarative grid, many jobs, executed
//! in parallel, one [`Artifact`] per cell.

use crate::artifact::Artifact;
use crate::error::ConfigError;
use crate::job::{JobBuilder, ValidJob};
use dpc_codec::Encoding;
use dpc_coordinator::TransportKind;
use dpc_obs::{Counter, Event, RecorderHandle};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One sweep axis: a parameter name and its values.
#[derive(Clone, Debug)]
enum Axis {
    K(Vec<usize>),
    T(Vec<usize>),
    Eps(Vec<f64>),
    Sites(Vec<usize>),
    Seed(Vec<u64>),
    Transport(Vec<TransportKind>),
    SyncEvery(Vec<u64>),
    Block(Vec<usize>),
    Encoding(Vec<Encoding>),
}

impl Axis {
    fn name(&self) -> &'static str {
        match self {
            Axis::K(_) => "k",
            Axis::T(_) => "t",
            Axis::Eps(_) => "eps",
            Axis::Sites(_) => "sites",
            Axis::Seed(_) => "seed",
            Axis::Transport(_) => "transport",
            Axis::SyncEvery(_) => "sync_every",
            Axis::Block(_) => "block",
            Axis::Encoding(_) => "encoding",
        }
    }

    fn len(&self) -> usize {
        match self {
            Axis::K(v) => v.len(),
            Axis::T(v) => v.len(),
            Axis::Eps(v) => v.len(),
            Axis::Sites(v) => v.len(),
            Axis::Seed(v) => v.len(),
            Axis::Transport(v) => v.len(),
            Axis::SyncEvery(v) => v.len(),
            Axis::Block(v) => v.len(),
            Axis::Encoding(v) => v.len(),
        }
    }

    fn apply(&self, b: JobBuilder, idx: usize) -> JobBuilder {
        match self {
            Axis::K(v) => b.k(v[idx]),
            Axis::T(v) => b.t(v[idx]),
            Axis::Eps(v) => b.eps(v[idx]),
            Axis::Sites(v) => b.sites(v[idx]),
            Axis::Seed(v) => b.seed(v[idx]),
            Axis::Transport(v) => b.transport(v[idx]),
            Axis::SyncEvery(v) => b.sync_every(v[idx]),
            Axis::Block(v) => b.block(v[idx]),
            Axis::Encoding(v) => b.encoding(v[idx]),
        }
    }
}

/// A cartesian parameter grid over a base job.
///
/// Axes expand row-major in the order they were added (the last axis
/// varies fastest), so results line up with nested loops over the same
/// lists. Cells execute concurrently on scoped threads, bounded by
/// [`Sweep::parallelism`]; each cell is an independent [`ValidJob::run`]
/// whose communication accounting is byte-identical to running that job
/// alone.
///
/// ```no_run
/// use dpc_api::{Job, Sweep};
/// use dpc_coordinator::TransportKind;
/// # let points = dpc_metric::PointSet::new(2);
/// let artifacts = Sweep::grid(Job::median(0, 0).points(points))
///     .k(&[4, 8])
///     .t(&[16, 64])
///     .transports(&[TransportKind::Channel, TransportKind::Tcp])
///     .parallelism(4)
///     .run()
///     .unwrap();
/// println!("{}", dpc_api::csv_table(&artifacts));
/// ```
#[derive(Clone, Debug)]
pub struct Sweep {
    base: JobBuilder,
    axes: Vec<Axis>,
    parallelism: usize,
    recorder: RecorderHandle,
}

impl Sweep {
    /// Starts a sweep over `base`; axis values override the base job's
    /// corresponding parameters cell by cell.
    pub fn grid(base: JobBuilder) -> Self {
        Self {
            base,
            axes: Vec::new(),
            parallelism: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            recorder: RecorderHandle::noop(),
        }
    }

    /// Adds a `k` axis.
    pub fn k(mut self, values: &[usize]) -> Self {
        self.axes.push(Axis::K(values.to_vec()));
        self
    }

    /// Adds a `t` axis.
    pub fn t(mut self, values: &[usize]) -> Self {
        self.axes.push(Axis::T(values.to_vec()));
        self
    }

    /// Adds an `eps` axis.
    pub fn eps(mut self, values: &[f64]) -> Self {
        self.axes.push(Axis::Eps(values.to_vec()));
        self
    }

    /// Adds a site-count axis.
    pub fn sites(mut self, values: &[usize]) -> Self {
        self.axes.push(Axis::Sites(values.to_vec()));
        self
    }

    /// Adds a seed axis (repetition with different partitions).
    pub fn seeds(mut self, values: &[u64]) -> Self {
        self.axes.push(Axis::Seed(values.to_vec()));
        self
    }

    /// Adds a transport-backend axis.
    pub fn transports(mut self, values: &[TransportKind]) -> Self {
        self.axes.push(Axis::Transport(values.to_vec()));
        self
    }

    /// Adds a sync-cadence axis (continuous jobs).
    pub fn sync_every(mut self, values: &[u64]) -> Self {
        self.axes.push(Axis::SyncEvery(values.to_vec()));
        self
    }

    /// Adds a block-size axis (streaming jobs).
    pub fn blocks(mut self, values: &[usize]) -> Self {
        self.axes.push(Axis::Block(values.to_vec()));
        self
    }

    /// Adds a wire-codec axis: the same job at every encoding, tracing
    /// out the bytes ⇄ quality frontier in one grid.
    pub fn encodings(mut self, values: &[Encoding]) -> Self {
        self.axes.push(Axis::Encoding(values.to_vec()));
        self
    }

    /// Caps the number of cells executing concurrently.
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers.max(1);
        self
    }

    /// Attaches an observability recorder: workers emit one
    /// [`dpc_obs::Event::CellDone`] per completed cell (and bump the
    /// `sweep_cells_done` counter) as the grid drains. Completion order
    /// is scheduling-dependent; per-cell traces come from the cells'
    /// own job knobs, not from this recorder.
    pub fn recorder(mut self, recorder: RecorderHandle) -> Self {
        self.recorder = recorder;
        self
    }

    /// Number of grid cells (product of axis lengths; 1 with no axes).
    pub fn cells(&self) -> usize {
        self.axes.iter().map(Axis::len).product()
    }

    /// Expands the grid into validated jobs, row-major.
    ///
    /// All cells are validated *before* anything runs, so a bad corner of
    /// the grid fails fast instead of after hours of sweeping.
    pub fn jobs(&self) -> Result<Vec<ValidJob>, ConfigError> {
        for axis in &self.axes {
            if axis.len() == 0 {
                return Err(ConfigError::EmptySweepAxis { axis: axis.name() });
            }
        }
        let cells = self.cells();
        let mut jobs = Vec::with_capacity(cells);
        for cell in 0..cells {
            let mut b = self.base.clone();
            // Row-major decode: the last axis varies fastest.
            let mut rem = cell;
            let mut radix = cells;
            for axis in &self.axes {
                radix /= axis.len();
                let idx = rem / radix;
                rem %= radix;
                b = axis.apply(b, idx);
            }
            jobs.push(b.validate()?);
        }
        Ok(jobs)
    }

    /// Expands, validates, and executes every cell, returning one
    /// artifact per cell in grid order.
    pub fn run(&self) -> Result<Vec<Artifact>, ConfigError> {
        let jobs = self.jobs()?;
        // run() needs data; fail with a typed error before spawning
        // workers rather than panicking inside one.
        for job in &jobs {
            job.require_data()?;
        }
        let results: Vec<Mutex<Option<Artifact>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.parallelism.min(jobs.len()).max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    let artifact = jobs[i].run();
                    *results[i].lock().unwrap() = Some(artifact);
                    if self.recorder.enabled() {
                        self.recorder.record(Event::CellDone {
                            cell: i,
                            total: jobs.len(),
                        });
                        self.recorder.add(Counter::SweepCellsDone, 1);
                    }
                });
            }
        });
        Ok(results
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("every cell ran"))
            .collect())
    }
}

/// Columns shared by [`csv_table`] and [`json_table`].
const TABLE_COLUMNS: &[&str] = &[
    "job",
    "k",
    "t",
    "eps",
    "sites",
    "seed",
    "transport",
    "n",
    "cost",
    "budget",
    "bytes",
    "rounds",
    "network_ms",
    "live_points",
    "syncs",
    // Codec columns last, so pre-codec CSV consumers keep their
    // positional reads (empty for raw cells).
    "encoding",
    "bytes_raw",
];

fn table_row(a: &Artifact) -> Vec<String> {
    vec![
        a.job.clone(),
        a.k.to_string(),
        a.t.to_string(),
        a.eps.to_string(),
        a.sites.to_string(),
        a.seed.to_string(),
        a.transport.clone().unwrap_or_default(),
        a.n.to_string(),
        a.cost.to_string(),
        a.budget.to_string(),
        a.bytes.to_string(),
        a.rounds.to_string(),
        a.network_ms.to_string(),
        a.live_points.map(|v| v.to_string()).unwrap_or_default(),
        a.syncs.map(|v| v.to_string()).unwrap_or_default(),
        a.encoding.clone().unwrap_or_default(),
        a.bytes_raw.map(|v| v.to_string()).unwrap_or_default(),
    ]
}

/// Renders sweep results as a CSV table (header plus one row per cell).
pub fn csv_table(artifacts: &[Artifact]) -> String {
    let mut out = TABLE_COLUMNS.join(",");
    out.push('\n');
    for a in artifacts {
        out.push_str(&table_row(a).join(","));
        out.push('\n');
    }
    out
}

/// Renders sweep results as a JSON array of full artifacts.
pub fn json_table(artifacts: &[Artifact]) -> String {
    let rows: Vec<String> = artifacts.iter().map(Artifact::to_json).collect();
    format!("[{}]", rows.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use dpc_workloads::{gaussian_mixture, MixtureSpec};

    fn base() -> JobBuilder {
        let points = gaussian_mixture(MixtureSpec {
            clusters: 3,
            inliers: 200,
            outliers: 3,
            seed: 5,
            ..Default::default()
        })
        .points;
        Job::median(3, 3).sites(3).points(points)
    }

    #[test]
    fn grid_expands_row_major() {
        let sweep = Sweep::grid(base()).k(&[2, 3]).t(&[0, 1, 2]);
        assert_eq!(sweep.cells(), 6);
        let jobs = sweep.jobs().unwrap();
        assert_eq!(jobs.len(), 6);
        // Last axis (t) varies fastest.
        let artifacts: Vec<(usize, usize)> = jobs
            .iter()
            .map(|j| {
                let a = j.run();
                (a.k, a.t)
            })
            .collect();
        assert_eq!(
            artifacts,
            vec![(2, 0), (2, 1), (2, 2), (3, 0), (3, 1), (3, 2)]
        );
    }

    #[test]
    fn parallel_run_preserves_grid_order() {
        let arts = Sweep::grid(base())
            .k(&[2, 3])
            .eps(&[0.5, 1.0])
            .parallelism(4)
            .run()
            .unwrap();
        assert_eq!(arts.len(), 4);
        let keys: Vec<(usize, f64)> = arts.iter().map(|a| (a.k, a.eps)).collect();
        assert_eq!(keys, vec![(2, 0.5), (2, 1.0), (3, 0.5), (3, 1.0)]);
    }

    #[test]
    fn bad_cell_fails_before_anything_runs() {
        let err = Sweep::grid(base()).k(&[2, 0]).jobs().unwrap_err();
        assert_eq!(err, ConfigError::ZeroParam { param: "k" });
        let err = Sweep::grid(base()).k(&[]).jobs().unwrap_err();
        assert_eq!(err, ConfigError::EmptySweepAxis { axis: "k" });
        // A dataless base is a typed error from run(), not a worker panic.
        let err = Sweep::grid(Job::median(2, 1)).k(&[2]).run().unwrap_err();
        assert_eq!(err, ConfigError::MissingData { job: "median" });
    }

    #[test]
    fn encoding_axis_traces_the_frontier() {
        let arts = Sweep::grid(base())
            .encodings(&[Encoding::Raw, Encoding::Delta])
            .parallelism(2)
            .run()
            .unwrap();
        assert_eq!(arts.len(), 2);
        assert_eq!(arts[0].encoding, None);
        assert_eq!(arts[1].encoding.as_deref(), Some("delta"));
        // Lossless codec: same solution, and the encoded cell's raw
        // accounting reproduces the raw cell's wire total exactly.
        assert_eq!(arts[0].centers, arts[1].centers);
        assert_eq!(arts[1].bytes_raw, Some(arts[0].bytes));
        assert_eq!(arts[1].quality_delta, Some(0.0));
        let csv = csv_table(&arts);
        let header = csv.lines().next().unwrap();
        assert!(header.ends_with("encoding,bytes_raw"), "{header}");
        assert!(csv.contains(",delta,"), "{csv}");
    }

    #[test]
    fn tables_cover_every_cell() {
        let arts = Sweep::grid(base()).k(&[2, 3]).parallelism(1).run().unwrap();
        let csv = csv_table(&arts);
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("job,k,t,eps,"));
        assert!(lines[1].starts_with("median,2,3,"));
        assert!(lines[2].starts_with("median,3,3,"));
        let json = json_table(&arts);
        assert!(json.starts_with("[{\"schema\":"));
        assert_eq!(json.matches("\"job\":\"median\"").count(), 2);
    }
}
