//! Input datasets for [`crate::Job`]s.

use dpc_metric::PointSet;
use dpc_uncertain::{NodeSet, UncertainNode};
use dpc_workloads::{partition, PartitionStrategy};

/// The input a job runs on.
///
/// Point protocols (median/means/center/one-round/subquadratic/stream)
/// accept [`Dataset::Points`] or [`Dataset::Shards`]; uncertain protocols
/// accept [`Dataset::Nodes`] or [`Dataset::NodeShards`]. Unsharded data
/// is split at run time using the job's site count, partition strategy
/// and seed — exactly like the CLI always did.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum Dataset {
    /// Raw points, partitioned across sites at run time.
    Points(PointSet),
    /// Pre-sharded points (one `PointSet` per site; overrides the job's
    /// site count).
    Shards(Vec<PointSet>),
    /// Uncertain nodes, split round-robin across sites at run time.
    Nodes(NodeSet),
    /// Pre-sharded uncertain nodes.
    NodeShards(Vec<NodeSet>),
}

impl Dataset {
    /// Number of input items (points or nodes).
    pub fn len(&self) -> usize {
        match self {
            Dataset::Points(ps) => ps.len(),
            Dataset::Shards(sh) => sh.iter().map(PointSet::len).sum(),
            Dataset::Nodes(ns) => ns.len(),
            Dataset::NodeShards(sh) => sh.iter().map(NodeSet::len).sum(),
        }
    }

    /// True when the dataset holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True for point-shaped data.
    pub fn is_points(&self) -> bool {
        matches!(self, Dataset::Points(_) | Dataset::Shards(_))
    }

    /// Materializes point shards for the protocol runtime.
    ///
    /// # Panics
    /// Panics on node-shaped data (validation rejects that pairing first).
    pub(crate) fn point_shards(
        &self,
        sites: usize,
        strategy: PartitionStrategy,
        seed: u64,
    ) -> Vec<PointSet> {
        match self {
            Dataset::Points(ps) => partition(ps, sites, strategy, &[], seed),
            Dataset::Shards(sh) => sh.clone(),
            _ => panic!("point protocol run on node data"),
        }
    }

    /// Materializes node shards for the uncertain protocols (round-robin
    /// split, the CLI's historical rule).
    ///
    /// # Panics
    /// Panics on point-shaped data.
    pub(crate) fn node_shards(&self, sites: usize) -> Vec<NodeSet> {
        match self {
            Dataset::NodeShards(sh) => sh.clone(),
            Dataset::Nodes(nodes) => {
                let mut shards: Vec<NodeSet> = (0..sites)
                    .map(|_| NodeSet::new(nodes.ground.dim()))
                    .collect();
                for (i, node) in nodes.nodes.iter().enumerate() {
                    let shard = &mut shards[i % sites];
                    let mut support = Vec::with_capacity(node.support.len());
                    for &sp in &node.support {
                        support.push(shard.ground.push(nodes.ground.point(sp)));
                    }
                    shard
                        .nodes
                        .push(UncertainNode::new(support, node.probs.clone()));
                }
                shards
            }
            _ => panic!("uncertain protocol run on point data"),
        }
    }

    /// The per-site point views used for quality re-evaluation.
    pub(crate) fn point_view(&self) -> Option<Vec<PointSet>> {
        match self {
            Dataset::Points(ps) => Some(vec![ps.clone()]),
            Dataset::Shards(sh) => Some(sh.clone()),
            _ => None,
        }
    }
}

impl From<PointSet> for Dataset {
    fn from(ps: PointSet) -> Self {
        Dataset::Points(ps)
    }
}

impl From<Vec<PointSet>> for Dataset {
    fn from(sh: Vec<PointSet>) -> Self {
        Dataset::Shards(sh)
    }
}

impl From<NodeSet> for Dataset {
    fn from(ns: NodeSet) -> Self {
        Dataset::Nodes(ns)
    }
}

impl From<Vec<NodeSet>> for Dataset {
    fn from(sh: Vec<NodeSet>) -> Self {
        Dataset::NodeShards(sh)
    }
}
