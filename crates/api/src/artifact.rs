//! The unified result type every job run produces.

use crate::data::Dataset;
use crate::json::{self, dur_to_ms, json_f64, usize_array, usize_vec, Json};
use dpc_coordinator::CommStats;
use dpc_core::evaluate_on_full_data;
use dpc_metric::{Objective, PointSet};
use dpc_obs::MetricsSummary;

/// Version tag embedded in the artifact JSON; bump on schema breaks.
///
/// v2: round objects gained `dropouts`, `retries` and `degraded`
/// (fault-injection accounting).
pub const ARTIFACT_SCHEMA: &str = "dpc.artifact/v2";

/// Per-round communication/compute breakdown.
///
/// Byte counts are kept **per site** (index = site id) so consumers can
/// check exact wire behaviour — summed views are one `iter().sum()` away
/// and the CLI renders them that way.
#[derive(Clone, Debug, PartialEq)]
pub struct RoundBreakdown {
    /// Bytes from the coordinator to each site.
    pub bytes_down: Vec<usize>,
    /// Bytes from each site to the coordinator.
    pub bytes_up: Vec<usize>,
    /// Slowest site compute this round, milliseconds.
    pub max_site_ms: f64,
    /// Coordinator compute planning this round, milliseconds.
    pub coordinator_ms: f64,
    /// Simulated network time of this round under the link model, ms.
    pub network_ms: f64,
    /// Sites whose reply never arrived this round (after all retries).
    pub dropouts: usize,
    /// Failed delivery attempts the runtime retried or abandoned.
    pub retries: usize,
    /// Whether the coordinator planned this round over a strict subset
    /// of the sites.
    pub degraded: bool,
}

impl RoundBreakdown {
    /// Total upstream bytes this round.
    pub fn up_total(&self) -> usize {
        self.bytes_up.iter().sum()
    }

    /// Total downstream bytes this round.
    pub fn down_total(&self) -> usize {
        self.bytes_down.iter().sum()
    }
}

/// Flattens protocol accounting into artifact rows.
pub(crate) fn round_breakdowns(stats: &CommStats) -> Vec<RoundBreakdown> {
    stats
        .rounds
        .iter()
        .map(|r| RoundBreakdown {
            bytes_down: r.coordinator_to_sites.clone(),
            bytes_up: r.sites_to_coordinator.clone(),
            max_site_ms: dur_to_ms(r.max_site_compute()),
            coordinator_ms: dur_to_ms(r.coordinator_compute),
            network_ms: dur_to_ms(r.network),
            dropouts: r.dropouts,
            retries: r.retries,
            degraded: r.degraded,
        })
        .collect()
}

/// The result of one job run: solution, communication accounting,
/// simulated network time, and the parameters that produced it — one
/// schema shared by the CLI, the bench harness and the sweep table
/// writers.
#[derive(Clone, Debug)]
pub struct Artifact {
    /// The protocol that ran (the job's [`crate::Job::name`]).
    pub job: String,
    /// Number of centers requested.
    pub k: usize,
    /// Outlier budget `t`.
    pub t: usize,
    /// Outlier relaxation ε the job ran with.
    pub eps: f64,
    /// Simulated sites.
    pub sites: usize,
    /// Partition/workload seed.
    pub seed: u64,
    /// Input size (points or nodes).
    pub n: usize,
    /// Chosen centers, as coordinate rows.
    pub centers: Vec<Vec<f64>>,
    /// Objective value at the output budget (protocol-specific
    /// evaluation; see the job docs).
    pub cost: f64,
    /// Exclusion budget used in the final evaluation.
    pub budget: usize,
    /// Total bytes on the simulated wire (0 for centralized jobs).
    pub bytes: usize,
    /// Protocol rounds executed (summed over syncs for continuous jobs).
    pub rounds: usize,
    /// Per-round breakdown, in execution order.
    pub round_stats: Vec<RoundBreakdown>,
    /// Transport backend the job was configured with (`None` for jobs
    /// that move no messages).
    pub transport: Option<String>,
    /// Total simulated network time under the configured link model, ms.
    pub network_ms: f64,
    /// Streaming jobs: live summary entries at the end of the run.
    pub live_points: Option<usize>,
    /// Continuous jobs: number of syncs executed.
    pub syncs: Option<usize>,
    /// Streaming jobs: ingest+solve throughput in points per second.
    pub points_per_sec: Option<f64>,
    /// Aggregated observability metrics, present when the job ran with
    /// metrics collection enabled ([`crate::JobBuilder::metrics`]). Additive:
    /// the schema stays [`ARTIFACT_SCHEMA`] because readers that ignore
    /// unknown fields are unaffected.
    pub metrics: Option<MetricsSummary>,
    /// Wire codec the protocol messages travelled through
    /// ([`crate::JobBuilder::encoding`]). Absent for raw runs, so their
    /// serialized form is byte-identical to pre-codec artifacts.
    pub encoding: Option<String>,
    /// Pre-codec payload bytes the same run would have moved raw
    /// (present exactly when [`Self::encoding`] is; [`Self::bytes`]
    /// already holds the compressed total).
    pub bytes_raw: Option<usize>,
    /// Measured objective delta against an exact raw run, signed
    /// relative: `(cost - cost_raw) / cost_raw`. `Some(0.0)` for
    /// lossless codecs; absent for raw runs and for lossy streaming
    /// sessions (the stream cannot be replayed for a baseline).
    pub quality_delta: Option<f64>,
}

impl Artifact {
    /// Total upstream bytes across all rounds.
    pub fn upstream_bytes(&self) -> usize {
        self.round_stats.iter().map(RoundBreakdown::up_total).sum()
    }

    /// Total downstream bytes across all rounds.
    pub fn downstream_bytes(&self) -> usize {
        self.round_stats
            .iter()
            .map(RoundBreakdown::down_total)
            .sum()
    }

    /// Rounds the coordinator completed over a strict subset of sites.
    pub fn degraded_rounds(&self) -> usize {
        self.round_stats.iter().filter(|r| r.degraded).count()
    }

    /// Total sites dropped across all rounds (after retries).
    pub fn total_dropouts(&self) -> usize {
        self.round_stats.iter().map(|r| r.dropouts).sum()
    }

    /// Raw-over-compressed byte ratio of an encoded run (1.0 for raw
    /// runs, where no codec frame existed to shrink anything).
    pub fn compression_ratio(&self) -> f64 {
        match self.bytes_raw {
            Some(raw) if self.bytes > 0 => raw as f64 / self.bytes as f64,
            _ => 1.0,
        }
    }

    /// On-demand quality evaluation: re-scores this artifact's centers
    /// against point data at an arbitrary exclusion budget, returning
    /// `(cost, points actually excluded)`. Returns `None` for node-shaped
    /// data (use the Monte-Carlo estimators in `dpc_uncertain` there).
    pub fn evaluate(
        &self,
        data: &Dataset,
        budget: usize,
        objective: Objective,
    ) -> Option<(f64, usize)> {
        let shards = data.point_view()?;
        let centers = PointSet::from_rows(&self.centers);
        Some(evaluate_on_full_data(&shards, &centers, budget, objective))
    }

    /// Plain-text rendering (the CLI's non-JSON output).
    pub fn text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{}: n={}, cost={:.6} (budget {}), comm={}B over {} rounds\n",
            self.job, self.n, self.cost, self.budget, self.bytes, self.rounds
        ));
        if let Some(t) = &self.transport {
            out.push_str(&format!(
                "transport: {t}, simulated network {:.3}ms\n",
                self.network_ms
            ));
        }
        if let (Some(e), Some(raw)) = (&self.encoding, self.bytes_raw) {
            out.push_str(&format!(
                "encoding: {e}, bytes {raw}B -> {}B ({:.2}x)",
                self.bytes,
                self.compression_ratio()
            ));
            if let Some(qd) = self.quality_delta {
                out.push_str(&format!(", quality delta {:+.4}%", qd * 100.0));
            }
            out.push('\n');
        }
        if let Some(lp) = self.live_points {
            out.push_str(&format!("live summary points: {lp}\n"));
        }
        if let Some(pps) = self.points_per_sec {
            out.push_str(&format!("throughput: {pps:.0} points/sec\n"));
        }
        if let Some(s) = self.syncs {
            out.push_str(&format!("syncs: {s}\n"));
        }
        if let Some(m) = &self.metrics {
            out.push_str(&m.render());
        }
        for (i, r) in self.round_stats.iter().enumerate() {
            out.push_str(&format!(
                "round {i}: up={}B down={}B site={:.3}ms coord={:.3}ms net={:.3}ms",
                r.up_total(),
                r.down_total(),
                r.max_site_ms,
                r.coordinator_ms,
                r.network_ms
            ));
            if r.degraded || r.retries > 0 {
                out.push_str(&format!(
                    " [degraded: {} dropped, {} retries]",
                    r.dropouts, r.retries
                ));
            }
            out.push('\n');
        }
        out.push_str("centers:\n");
        for c in &self.centers {
            let coords: Vec<String> = c.iter().map(|v| format!("{v}")).collect();
            out.push_str(&format!("  [{}]\n", coords.join(", ")));
        }
        out
    }

    /// Serializes the artifact to its canonical JSON schema
    /// ([`ARTIFACT_SCHEMA`]). Optional fields are omitted when absent;
    /// key order is fixed, so equal artifacts serialize identically.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str(&format!(
            "{{\"schema\":\"{}\",\"job\":\"{}\",\"k\":{},\"t\":{},\"eps\":{},\"sites\":{},\"seed\":{},\"n\":{}",
            ARTIFACT_SCHEMA,
            json::escape(&self.job),
            self.k,
            self.t,
            json_f64(self.eps),
            self.sites,
            self.seed,
            self.n
        ));
        s.push_str(&format!(
            ",\"cost\":{},\"budget\":{},\"bytes\":{},\"rounds\":{},\"network_ms\":{}",
            json_f64(self.cost),
            self.budget,
            self.bytes,
            self.rounds,
            json_f64(self.network_ms)
        ));
        if let Some(t) = &self.transport {
            s.push_str(&format!(",\"transport\":\"{}\"", json::escape(t)));
        }
        if let Some(e) = &self.encoding {
            s.push_str(&format!(",\"encoding\":\"{}\"", json::escape(e)));
        }
        if let Some(raw) = self.bytes_raw {
            s.push_str(&format!(",\"bytes_raw\":{raw}"));
        }
        if let Some(qd) = self.quality_delta {
            s.push_str(&format!(",\"quality_delta\":{}", json_f64(qd)));
        }
        if let Some(lp) = self.live_points {
            s.push_str(&format!(",\"live_points\":{lp}"));
        }
        if let Some(sy) = self.syncs {
            s.push_str(&format!(",\"syncs\":{sy}"));
        }
        if let Some(pps) = self.points_per_sec {
            s.push_str(&format!(",\"points_per_sec\":{}", json_f64(pps)));
        }
        if let Some(m) = &self.metrics {
            s.push_str(&format!(",\"metrics\":{}", m.to_json()));
        }
        s.push_str(",\"round_stats\":[");
        for (i, r) in self.round_stats.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"bytes_down\":{},\"bytes_up\":{},\"max_site_ms\":{},\"coordinator_ms\":{},\"network_ms\":{},\"dropouts\":{},\"retries\":{},\"degraded\":{}}}",
                usize_array(&r.bytes_down),
                usize_array(&r.bytes_up),
                json_f64(r.max_site_ms),
                json_f64(r.coordinator_ms),
                json_f64(r.network_ms),
                r.dropouts,
                r.retries,
                r.degraded
            ));
        }
        s.push_str("],\"centers\":[");
        for (i, c) in self.centers.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let coords: Vec<String> = c.iter().map(|&v| json_f64(v)).collect();
            s.push_str(&format!("[{}]", coords.join(",")));
        }
        s.push_str("]}");
        s
    }

    /// Reads an artifact back from [`Self::to_json`] output.
    pub fn from_json(doc: &str) -> Result<Artifact, String> {
        let v = json::parse(doc)?;
        let schema = v
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing schema tag")?;
        if schema != ARTIFACT_SCHEMA {
            return Err(format!(
                "unsupported artifact schema '{schema}' (expected {ARTIFACT_SCHEMA})"
            ));
        }
        let str_field = |name: &str| -> Result<String, String> {
            Ok(v.get(name)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("missing field '{name}'"))?
                .to_string())
        };
        let num = |name: &str| -> Result<f64, String> {
            // Non-finite values serialize as null (JSON has no inf/NaN).
            match v.get(name) {
                Some(Json::Null) => Ok(f64::NAN),
                Some(j) => j
                    .as_f64()
                    .ok_or_else(|| format!("non-numeric field '{name}'")),
                None => Err(format!("missing numeric field '{name}'")),
            }
        };
        let uint = |name: &str| -> Result<usize, String> {
            v.get(name)
                .and_then(Json::as_usize)
                .ok_or_else(|| format!("missing integer field '{name}'"))
        };
        let rounds_arr = v
            .get("round_stats")
            .and_then(Json::as_arr)
            .ok_or("missing round_stats")?;
        let mut round_stats = Vec::with_capacity(rounds_arr.len());
        for r in rounds_arr {
            round_stats.push(RoundBreakdown {
                bytes_down: usize_vec(r.get("bytes_down"))?,
                bytes_up: usize_vec(r.get("bytes_up"))?,
                max_site_ms: round_f64(r, "max_site_ms")?,
                coordinator_ms: round_f64(r, "coordinator_ms")?,
                network_ms: round_f64(r, "network_ms")?,
                dropouts: r
                    .get("dropouts")
                    .and_then(Json::as_usize)
                    .ok_or("missing dropouts")?,
                retries: r
                    .get("retries")
                    .and_then(Json::as_usize)
                    .ok_or("missing retries")?,
                degraded: r
                    .get("degraded")
                    .and_then(Json::as_bool)
                    .ok_or("missing degraded")?,
            });
        }
        let centers_arr = v
            .get("centers")
            .and_then(Json::as_arr)
            .ok_or("missing centers")?;
        let mut centers = Vec::with_capacity(centers_arr.len());
        for c in centers_arr {
            let row = c.as_arr().ok_or("center row is not an array")?;
            centers.push(
                row.iter()
                    .map(|x| match x {
                        Json::Null => Ok(f64::NAN),
                        _ => x.as_f64().ok_or("non-numeric coordinate"),
                    })
                    .collect::<Result<Vec<f64>, _>>()?,
            );
        }
        Ok(Artifact {
            job: str_field("job")?,
            k: uint("k")?,
            t: uint("t")?,
            eps: num("eps")?,
            sites: uint("sites")?,
            seed: v
                .get("seed")
                .and_then(Json::as_u64)
                .ok_or("missing integer field 'seed'")?,
            n: uint("n")?,
            centers,
            cost: num("cost")?,
            budget: uint("budget")?,
            bytes: uint("bytes")?,
            rounds: uint("rounds")?,
            round_stats,
            transport: v.get("transport").and_then(Json::as_str).map(String::from),
            network_ms: num("network_ms")?,
            live_points: v.get("live_points").and_then(Json::as_usize),
            syncs: v.get("syncs").and_then(Json::as_usize),
            points_per_sec: v.get("points_per_sec").and_then(Json::as_f64),
            metrics: match v.get("metrics") {
                Some(m) => Some(MetricsSummary::from_json(m)?),
                None => None,
            },
            encoding: v.get("encoding").and_then(Json::as_str).map(String::from),
            bytes_raw: v.get("bytes_raw").and_then(Json::as_usize),
            quality_delta: v.get("quality_delta").and_then(Json::as_f64),
        })
    }
}

/// Reads one (possibly `null`) millisecond field of a round object.
fn round_f64(r: &Json, name: &str) -> Result<f64, String> {
    match r.get(name) {
        Some(Json::Null) => Ok(f64::NAN),
        Some(j) => j.as_f64().ok_or_else(|| format!("bad {name}")),
        None => Err(format!("missing {name}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample() -> Artifact {
        Artifact {
            job: "median".into(),
            k: 2,
            t: 1,
            eps: 0.5,
            sites: 3,
            seed: 42,
            n: 41,
            centers: vec![vec![1.0, 2.0], vec![-3.25, 0.0]],
            cost: 3.5,
            budget: 2,
            bytes: 100,
            rounds: 2,
            round_stats: vec![RoundBreakdown {
                bytes_down: vec![5, 5, 5],
                bytes_up: vec![20, 30, 35],
                max_site_ms: 1.5,
                coordinator_ms: 0.5,
                network_ms: 2.25,
                dropouts: 1,
                retries: 2,
                degraded: true,
            }],
            transport: Some("tcp".into()),
            network_ms: 2.25,
            live_points: Some(7),
            syncs: None,
            points_per_sec: Some(1000.0),
            metrics: None,
            encoding: None,
            bytes_raw: None,
            quality_delta: None,
        }
    }

    #[test]
    fn json_round_trip_is_stable() {
        let a = sample();
        let doc = a.to_json();
        let b = Artifact::from_json(&doc).unwrap();
        // Serialized form is the equality we care about (fixed key order
        // means equal artifacts produce byte-equal documents).
        assert_eq!(doc, b.to_json());
        assert_eq!(b.centers, a.centers);
        assert_eq!(b.round_stats, a.round_stats);
        assert_eq!(b.transport.as_deref(), Some("tcp"));
        assert_eq!(b.syncs, None);
    }

    #[test]
    fn optional_fields_are_omitted() {
        let mut a = sample();
        a.transport = None;
        a.live_points = None;
        a.points_per_sec = None;
        let doc = a.to_json();
        assert!(!doc.contains("transport"));
        assert!(!doc.contains("live_points"));
        assert!(!doc.contains("points_per_sec"));
        assert!(Artifact::from_json(&doc).is_ok());
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        let mut a = sample();
        a.cost = f64::INFINITY;
        a.centers[0][1] = f64::NAN;
        let doc = a.to_json();
        assert!(doc.contains("\"cost\":null"), "{doc}");
        assert!(doc.contains("[1,null]"), "{doc}");
        // Still valid JSON, still the document-level identity.
        let back = Artifact::from_json(&doc).unwrap();
        assert!(back.cost.is_nan());
        assert!(back.centers[0][1].is_nan());
        assert_eq!(back.to_json(), doc);
    }

    #[test]
    fn seed_round_trips_exactly_beyond_f64() {
        let mut a = sample();
        a.seed = 9_007_199_254_740_993; // 2^53 + 1: f64 would round it
        let back = Artifact::from_json(&a.to_json()).unwrap();
        assert_eq!(back.seed, 9_007_199_254_740_993);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let doc = sample().to_json().replace(ARTIFACT_SCHEMA, "other/v9");
        assert!(Artifact::from_json(&doc).unwrap_err().contains("schema"));
    }

    #[test]
    fn fault_fields_round_trip_and_render() {
        let a = sample();
        let doc = a.to_json();
        assert!(
            doc.contains("\"dropouts\":1,\"retries\":2,\"degraded\":true"),
            "{doc}"
        );
        let back = Artifact::from_json(&doc).unwrap();
        assert_eq!(back.round_stats[0].dropouts, 1);
        assert_eq!(back.round_stats[0].retries, 2);
        assert!(back.round_stats[0].degraded);
        assert_eq!(back.degraded_rounds(), 1);
        assert_eq!(back.total_dropouts(), 1);
        assert!(a.text().contains("[degraded: 1 dropped, 2 retries]"));
        // A clean round renders without the fault suffix.
        let mut clean = sample();
        clean.round_stats[0].dropouts = 0;
        clean.round_stats[0].retries = 0;
        clean.round_stats[0].degraded = false;
        assert!(!clean.text().contains("degraded"));
    }

    #[test]
    fn metrics_section_round_trips_and_renders() {
        let mut a = sample();
        let mut m = MetricsSummary {
            plan_ns: 1_000_000,
            site_compute_ns: 2_000_000,
            network_ns: 3_000_000,
            total_bytes: 100,
            down_bytes: 15,
            up_bytes: 85,
            rounds: 2,
            dropouts: 1,
            retries: 2,
            degraded_rounds: 1,
            round_network_p50_ns: 1_500_000,
            round_network_p90_ns: 3_000_000,
            round_network_max_ns: 3_000_000,
            ..MetricsSummary::default()
        };
        m.counters[0] = 41;
        a.metrics = Some(m);
        let doc = a.to_json();
        assert!(doc.contains("\"metrics\":{\"plan_ns\":1000000"), "{doc}");
        let back = Artifact::from_json(&doc).unwrap();
        assert_eq!(back.metrics, a.metrics);
        assert_eq!(back.to_json(), doc);
        assert!(a.text().contains("metrics: 2 rounds"), "{}", a.text());
        // Absent metrics stays absent.
        let plain = sample().to_json();
        assert!(!plain.contains("\"metrics\""));
        assert_eq!(Artifact::from_json(&plain).unwrap().metrics, None);
    }

    #[test]
    fn codec_fields_round_trip_render_and_stay_absent_for_raw() {
        // Raw artifacts never mention the codec — byte-compatibility
        // with pre-codec consumers and goldens.
        let raw_doc = sample().to_json();
        assert!(!raw_doc.contains("encoding"), "{raw_doc}");
        assert!(!raw_doc.contains("bytes_raw"), "{raw_doc}");
        assert!(!raw_doc.contains("quality_delta"), "{raw_doc}");
        assert_eq!(sample().compression_ratio(), 1.0);
        assert!(!sample().text().contains("encoding:"));

        let mut a = sample();
        a.encoding = Some("f16".into());
        a.bytes_raw = Some(250);
        a.quality_delta = Some(0.0125);
        let doc = a.to_json();
        assert!(
            doc.contains("\"encoding\":\"f16\",\"bytes_raw\":250,\"quality_delta\":0.0125"),
            "{doc}"
        );
        let back = Artifact::from_json(&doc).unwrap();
        assert_eq!(back.encoding.as_deref(), Some("f16"));
        assert_eq!(back.bytes_raw, Some(250));
        assert_eq!(back.quality_delta, Some(0.0125));
        assert_eq!(back.to_json(), doc);
        assert!((a.compression_ratio() - 2.5).abs() < 1e-12);
        let text = a.text();
        assert!(
            text.contains("encoding: f16, bytes 250B -> 100B (2.50x), quality delta +1.2500%"),
            "{text}"
        );
    }

    #[test]
    fn text_rendering_sums_per_site_bytes() {
        let t = sample().text();
        assert!(t.contains("round 0: up=85B down=15B"), "{t}");
        assert!(
            t.contains("transport: tcp, simulated network 2.250ms"),
            "{t}"
        );
        assert!(t.contains("[1, 2]"), "{t}");
    }
}
