//! The typed front door: describe a run as a [`Job`], refine it with the
//! fluent [`JobBuilder`], check it with [`JobBuilder::validate`], execute
//! it with [`ValidJob::run`].

use crate::artifact::{round_breakdowns, Artifact};
use crate::data::Dataset;
use crate::error::{ConfigError, ConfigWarning};
use dpc_codec::Encoding;
use dpc_coordinator::{FaultPlan, LinkModel, RunOptions, TransportKind};
use dpc_core::{
    evaluate_on_full_data_recorded, merge_shards, run_distributed_center, run_distributed_median,
    run_one_round_center, run_one_round_median, subquadratic_median, CenterConfig, MedianConfig,
    SubquadraticParams,
};
use dpc_metric::{Objective, PointSet, ThreadBudget};
use dpc_obs::{Collector, Event, RecorderHandle};
use dpc_stream::{
    ContinuousCluster, ContinuousConfig, SlidingWindowEngine, StreamConfig, StreamEngine,
};
use dpc_uncertain::{
    estimate_expected_cost_recorded, run_center_g, run_center_g_one_round, run_uncertain_median,
    CenterGConfig, UncertainConfig,
};
use dpc_workloads::{gaussian_blobs, BlobsSpec, PartitionStrategy};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// On-disk format of a job trace ([`JobBuilder::trace`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceFormat {
    /// One JSON object per line, schema [`dpc_obs::TRACE_SCHEMA`] — the
    /// deterministic, diffable format (identical seeds produce identical
    /// bytes on every transport backend).
    #[default]
    Jsonl,
    /// Chrome trace-event JSON, openable in `chrome://tracing` or
    /// Perfetto. Schematic: mixes wall-clock and simulated time, and is
    /// not byte-deterministic.
    Chrome,
}

/// Which protocol a job targets — every entry point in the workspace,
/// behind one enum.
#[derive(Clone, Copy, Debug, PartialEq)]
#[non_exhaustive]
pub enum Job {
    /// 2-round distributed `(k,(1+ε)t)`-median (Algorithm 1).
    Median,
    /// 2-round distributed `(k,(1+ε)t)`-means.
    Means,
    /// 2-round distributed `(k,t)`-center (Algorithm 2).
    Center,
    /// The 1-round `O((sk+st)B)` baselines of Table 2.
    OneRound {
        /// Which objective's baseline.
        objective: Objective,
    },
    /// Uncertain `(k,t)`-median via the compressed graph (Algorithm 3).
    UncertainMedian,
    /// Uncertain `(k,t)`-center-g (Algorithm 4).
    CenterG {
        /// `Some((d_min, d_max))` runs the 1-round variant, which needs
        /// the global distance range a priori.
        d_range: Option<(f64, f64)>,
    },
    /// Single-machine streaming (merge-and-reduce; `window > 0` solves
    /// over a sliding window instead of the whole stream).
    Stream {
        /// Query objective.
        objective: Objective,
        /// Sliding-window length in points (0 = insertion-only).
        window: u64,
    },
    /// Continuous distributed streaming: per-site engines plus the
    /// periodic 2-round sync protocol.
    Continuous {
        /// Query/sync objective (median or means).
        objective: Objective,
        /// Fleet-wide ingested points between syncs.
        sync_every: u64,
    },
    /// Centralized subquadratic `(k,2t)`-median (Theorem 3.10).
    Subquadratic,
}

impl Job {
    /// Stable name of the protocol (used in artifacts and tables).
    pub fn name(&self) -> &'static str {
        match self {
            Job::Median => "median",
            Job::Means => "means",
            Job::Center => "center",
            Job::OneRound {
                objective: Objective::Median,
            } => "one-round-median",
            Job::OneRound {
                objective: Objective::Means,
            } => "one-round-means",
            Job::OneRound { .. } => "one-round-center",
            Job::UncertainMedian => "uncertain-median",
            Job::CenterG { d_range: None } => "center-g",
            Job::CenterG { .. } => "one-round-center-g",
            Job::Stream { window: 0, .. } => "stream",
            Job::Stream { .. } => "stream-window",
            Job::Continuous { .. } => "continuous",
            Job::Subquadratic => "subquadratic",
        }
    }

    /// True when the job drives the protocol runtime (and transport/link
    /// settings therefore have an effect).
    fn uses_runtime(&self) -> bool {
        !matches!(self, Job::Subquadratic | Job::Stream { .. })
    }

    /// True for jobs over uncertain nodes rather than points.
    fn is_uncertain(&self) -> bool {
        matches!(self, Job::UncertainMedian | Job::CenterG { .. })
    }

    /// True when the job's wire messages go through the codec layer
    /// (the uncertain protocols and the non-protocol jobs always run
    /// [`Encoding::Raw`]).
    fn uses_encoding(&self) -> bool {
        matches!(
            self,
            Job::Median | Job::Means | Job::Center | Job::OneRound { .. } | Job::Continuous { .. }
        )
    }

    /// True for the streaming kinds (which also accept row-at-a-time
    /// ingest through [`ValidJob::session`]).
    fn is_streaming(&self) -> bool {
        matches!(self, Job::Stream { .. } | Job::Continuous { .. })
    }

    /// Builder for this job kind.
    pub fn builder(self, k: usize, t: usize) -> JobBuilder {
        JobBuilder::new(self, k, t)
    }

    /// Builder for the 2-round `(k,(1+ε)t)`-median protocol.
    pub fn median(k: usize, t: usize) -> JobBuilder {
        Job::Median.builder(k, t)
    }

    /// Builder for the 2-round `(k,(1+ε)t)`-means protocol.
    pub fn means(k: usize, t: usize) -> JobBuilder {
        Job::Means.builder(k, t)
    }

    /// Builder for the 2-round `(k,t)`-center protocol.
    pub fn center(k: usize, t: usize) -> JobBuilder {
        Job::Center.builder(k, t)
    }

    /// Builder for a 1-round baseline with the given objective.
    pub fn one_round(objective: Objective, k: usize, t: usize) -> JobBuilder {
        Job::OneRound { objective }.builder(k, t)
    }

    /// Builder for uncertain `(k,t)`-median (Algorithm 3).
    pub fn uncertain_median(k: usize, t: usize) -> JobBuilder {
        Job::UncertainMedian.builder(k, t)
    }

    /// Builder for uncertain `(k,t)`-center-g (Algorithm 4).
    pub fn center_g(k: usize, t: usize) -> JobBuilder {
        Job::CenterG { d_range: None }.builder(k, t)
    }

    /// Builder for single-machine streaming (median objective; use
    /// [`JobBuilder::objective`] / [`JobBuilder::window`] to refine).
    pub fn stream(k: usize, t: usize) -> JobBuilder {
        Job::Stream {
            objective: Objective::Median,
            window: 0,
        }
        .builder(k, t)
    }

    /// Builder for continuous distributed streaming (sync every 1024
    /// points by default; use [`JobBuilder::sync_every`] to change).
    pub fn continuous(k: usize, t: usize) -> JobBuilder {
        Job::Continuous {
            objective: Objective::Median,
            sync_every: 1024,
        }
        .builder(k, t)
    }

    /// Builder for the centralized subquadratic `(k,2t)`-median.
    pub fn subquadratic(k: usize, t: usize) -> JobBuilder {
        Job::Subquadratic.builder(k, t)
    }
}

/// Fluent configuration of a [`Job`].
///
/// Every knob has a sensible default (matching the historical config
/// structs), so `Job::median(5, 20).validate()?.run()` is a complete
/// program. Knobs that do not apply to the chosen job kind are recorded
/// and surface as [`ConfigWarning::KnobUnused`] at validation time —
/// never silently dropped, never fatal.
#[derive(Clone, Debug)]
pub struct JobBuilder {
    job: Job,
    k: usize,
    t: usize,
    eps: f64,
    rho: f64,
    delta: f64,
    sites: usize,
    sites_set: bool,
    seed: u64,
    strategy: PartitionStrategy,
    block: usize,
    parallel: bool,
    transport: TransportKind,
    link: LinkModel,
    transport_set: bool,
    encoding: Encoding,
    threads: usize,
    dropout: f64,
    fault_seed: u64,
    timeout: Option<std::time::Duration>,
    retries: u32,
    trace: Option<PathBuf>,
    trace_format: TraceFormat,
    trace_format_set: bool,
    metrics: bool,
    unused_knobs: Vec<&'static str>,
    data: Option<Arc<Dataset>>,
}

impl JobBuilder {
    fn new(job: Job, k: usize, t: usize) -> Self {
        Self {
            job,
            k,
            t,
            eps: 1.0,
            rho: 2.0,
            delta: 0.0,
            sites: 4,
            sites_set: false,
            seed: 42,
            strategy: PartitionStrategy::Random,
            block: 256,
            parallel: true,
            transport: TransportKind::Channel,
            link: LinkModel::ideal(),
            transport_set: false,
            encoding: Encoding::Raw,
            threads: 1,
            dropout: 0.0,
            fault_seed: 0,
            timeout: None,
            retries: 0,
            trace: None,
            trace_format: TraceFormat::Jsonl,
            trace_format_set: false,
            metrics: false,
            unused_knobs: Vec::new(),
            data: None,
        }
    }

    /// The job kind under construction.
    pub fn job(&self) -> &Job {
        &self.job
    }

    /// Sets the number of centers `k`.
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the outlier budget `t`.
    pub fn t(mut self, t: usize) -> Self {
        self.t = t;
        self
    }

    /// Sets the outlier relaxation ε.
    pub fn eps(mut self, eps: f64) -> Self {
        self.eps = eps;
        self
    }

    /// Sets the grid/allocation ratio ρ.
    pub fn rho(mut self, rho: f64) -> Self {
        self.rho = rho;
        self
    }

    /// Switches median/means jobs to the Theorem 3.8 counts-only variant
    /// with ratio `1 + delta` (a no-effect warning elsewhere).
    pub fn delta(mut self, delta: f64) -> Self {
        if !matches!(
            self.job,
            Job::Median
                | Job::Means
                | Job::OneRound {
                    objective: Objective::Median | Objective::Means,
                }
        ) {
            self.unused_knobs.push("delta");
        }
        self.delta = delta;
        self
    }

    /// Sets the number of simulated sites.
    pub fn sites(mut self, sites: usize) -> Self {
        self.sites = sites;
        self.sites_set = true;
        self
    }

    /// Sets the partition seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets how unsharded point data is split across sites.
    pub fn strategy(mut self, strategy: PartitionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the streaming block size (a no-effect warning on batch jobs).
    pub fn block(mut self, block: usize) -> Self {
        if !self.job.is_streaming() {
            self.unused_knobs.push("block");
        }
        self.block = block;
        self
    }

    /// Sets the sliding-window length of a [`Job::Stream`] job (a
    /// no-effect warning elsewhere).
    pub fn window(mut self, window: u64) -> Self {
        match &mut self.job {
            Job::Stream { window: w, .. } => *w = window,
            _ => self.unused_knobs.push("window"),
        }
        self
    }

    /// Sets the sync cadence of a [`Job::Continuous`] job (a no-effect
    /// warning elsewhere).
    pub fn sync_every(mut self, points: u64) -> Self {
        match &mut self.job {
            Job::Continuous { sync_every, .. } => *sync_every = points,
            _ => self.unused_knobs.push("sync_every"),
        }
        self
    }

    /// Sets the query objective of a streaming job (a no-effect warning
    /// elsewhere).
    pub fn objective(mut self, objective: Objective) -> Self {
        match &mut self.job {
            Job::Stream { objective: o, .. } | Job::Continuous { objective: o, .. } => {
                *o = objective
            }
            _ => self.unused_knobs.push("objective"),
        }
        self
    }

    /// Supplies the a-priori distance range that turns [`Job::CenterG`]
    /// into its 1-round variant (a no-effect warning elsewhere).
    pub fn d_range(mut self, d_min: f64, d_max: f64) -> Self {
        match &mut self.job {
            Job::CenterG { d_range } => *d_range = Some((d_min, d_max)),
            _ => self.unused_knobs.push("d_range"),
        }
        self
    }

    /// Switches the protocol runtime backend.
    pub fn transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self.transport_set = true;
        self
    }

    /// Selects the wire codec protocol messages travel through
    /// ([`Encoding::Raw`] by default, which is byte-identical to not
    /// having a codec at all). A no-effect warning on jobs whose
    /// messages never go through the codec layer (uncertain protocols,
    /// single-machine streaming, centralized jobs).
    pub fn encoding(mut self, encoding: Encoding) -> Self {
        if !self.job.uses_encoding() {
            self.unused_knobs.push("encoding");
        }
        self.encoding = encoding;
        self
    }

    /// Sets the simulated link model.
    pub fn link(mut self, link: LinkModel) -> Self {
        if link.latency != std::time::Duration::ZERO || link.bandwidth.is_finite() {
            self.transport_set = true;
        }
        self.link = link;
        self
    }

    /// Injects seed-deterministic dropout: each delivery attempt to a
    /// site fails with probability `p` (see
    /// [`dpc_coordinator::FaultPlan`]). Validation rejects `p` outside
    /// `[0, 1)`; a no-effect warning on jobs that never drive the
    /// protocol runtime.
    pub fn dropout(mut self, p: f64) -> Self {
        if !self.job.uses_runtime() {
            self.unused_knobs.push("dropout");
        }
        self.dropout = p;
        self
    }

    /// Sets the seed behind every injected fault (independent of the
    /// partition seed, so workload and chaos schedule vary separately).
    pub fn fault_seed(mut self, seed: u64) -> Self {
        if !self.job.uses_runtime() {
            self.unused_knobs.push("fault_seed");
        }
        self.fault_seed = seed;
        self
    }

    /// Sets the per-attempt timeout the coordinator charges to simulated
    /// time when a site fails to answer.
    pub fn timeout(mut self, timeout: std::time::Duration) -> Self {
        if !self.job.uses_runtime() {
            self.unused_knobs.push("timeout");
        }
        self.timeout = Some(timeout);
        self
    }

    /// Sets how many extra delivery attempts the coordinator makes after
    /// a failed one.
    pub fn retries(mut self, retries: u32) -> Self {
        if !self.job.uses_runtime() {
            self.unused_knobs.push("retries");
        }
        self.retries = retries;
        self
    }

    /// Writes a structured trace of the run to `path` (format per
    /// [`Self::trace_format`]). Jobs that never drive the protocol
    /// runtime still write a trace, but it carries only the run span and
    /// kernel counters — validation surfaces that as
    /// [`ConfigWarning::TraceWithoutProtocol`].
    pub fn trace(mut self, path: impl Into<PathBuf>) -> Self {
        self.trace = Some(path.into());
        self
    }

    /// Selects the trace file format (default: deterministic JSONL).
    pub fn trace_format(mut self, format: TraceFormat) -> Self {
        self.trace_format = format;
        self.trace_format_set = true;
        self
    }

    /// Collects aggregated run metrics into the artifact's
    /// [`crate::Artifact::metrics`] field.
    pub fn metrics(mut self, on: bool) -> Self {
        self.metrics = on;
        self
    }

    /// The encoding the run will actually use: the configured one on
    /// codec-aware jobs, [`Encoding::Raw`] everywhere else (where the
    /// knob already produced a no-effect warning).
    fn effective_encoding(&self) -> Encoding {
        if self.job.uses_encoding() {
            self.encoding
        } else {
            Encoding::Raw
        }
    }

    /// The fault plan this configuration injects into protocol runs.
    fn fault_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::none();
        plan.seed = self.fault_seed;
        plan.dropout = self.dropout;
        plan.timeout = self.timeout;
        plan.retries = self.retries;
        plan
    }

    /// Runs site phases sequentially on the caller's thread
    /// (deterministic timing; bytes are identical either way).
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Caps the bulk-kernel thread budget inside the solvers (site-side
    /// assignment, coordinator scoring) and, on the mux transport, the
    /// coordinator's event-loop shard pool. Defaults to 1 so jobs
    /// compose with [`crate::Sweep`] workers and per-site transport
    /// threads without oversubscribing; results are identical at any
    /// budget.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Attaches a generated [`dpc_workloads::gaussian_blobs`] point
    /// workload — the high-dimensional kernel-stress input.
    pub fn gaussian_blobs(self, spec: BlobsSpec) -> Self {
        self.points(gaussian_blobs(spec).points)
    }

    /// Attaches the input dataset.
    pub fn data(mut self, data: impl Into<Dataset>) -> Self {
        self.data = Some(Arc::new(data.into()));
        self
    }

    /// Attaches a shared dataset without copying it (how [`crate::Sweep`]
    /// fans one input out to many cells).
    pub fn data_arc(mut self, data: Arc<Dataset>) -> Self {
        self.data = Some(data);
        self
    }

    /// Attaches raw points, partitioned across sites at run time.
    pub fn points(self, points: PointSet) -> Self {
        self.data(Dataset::Points(points))
    }

    /// Attaches pre-sharded points (one per site).
    pub fn shards(self, shards: Vec<PointSet>) -> Self {
        self.data(Dataset::Shards(shards))
    }

    /// The empty artifact skeleton carrying this job's echo fields
    /// (protocol name, parameters) — run paths fill in the results.
    fn base_artifact(&self, n: usize) -> Artifact {
        Artifact {
            job: self.job.name().to_string(),
            k: self.k,
            t: self.t,
            eps: self.eps,
            sites: self.sites,
            seed: self.seed,
            n,
            centers: Vec::new(),
            cost: 0.0,
            budget: 0,
            bytes: 0,
            rounds: 0,
            round_stats: Vec::new(),
            transport: None,
            network_ms: 0.0,
            live_points: None,
            syncs: None,
            points_per_sec: None,
            metrics: None,
            encoding: None,
            bytes_raw: None,
            quality_delta: None,
        }
    }

    /// Checks every invariant the configuration can violate, returning a
    /// runnable [`ValidJob`] or the first [`ConfigError`].
    ///
    /// Hard errors cover configurations that cannot run correctly
    /// (including the formerly warning-only `eps = 0` streaming footgun);
    /// no-effect knobs become structured [`ConfigWarning`]s on the
    /// returned job. Data-dependent checks (`k` vs `n`, kind mismatch)
    /// run only when a dataset is attached.
    pub fn validate(self) -> Result<ValidJob, ConfigError> {
        if self.k == 0 {
            return Err(ConfigError::ZeroParam { param: "k" });
        }
        if self.sites == 0 {
            return Err(ConfigError::ZeroParam { param: "sites" });
        }
        for (param, value) in [("eps", self.eps), ("delta", self.delta)] {
            if !value.is_finite() {
                return Err(ConfigError::NonFinite { param, value });
            }
            if value < 0.0 {
                return Err(ConfigError::Negative { param, value });
            }
        }
        if !self.rho.is_finite() || self.rho <= 1.0 {
            return Err(ConfigError::RhoNotAboveOne { value: self.rho });
        }
        if !self.dropout.is_finite() || !(0.0..1.0).contains(&self.dropout) {
            return Err(ConfigError::DropoutOutOfRange {
                value: self.dropout,
            });
        }
        match self.job {
            Job::Stream { window, .. } => {
                if self.eps == 0.0 {
                    return Err(ConfigError::ExactOutlierQueries);
                }
                if self.block == 0 {
                    return Err(ConfigError::ZeroParam { param: "block" });
                }
                if window > 0 && window < self.block as u64 {
                    return Err(ConfigError::WindowBelowBlock {
                        window,
                        block: self.block,
                    });
                }
            }
            Job::Continuous {
                objective,
                sync_every,
            } => {
                if self.eps == 0.0 {
                    return Err(ConfigError::ExactOutlierQueries);
                }
                if self.block == 0 {
                    return Err(ConfigError::ZeroParam { param: "block" });
                }
                if sync_every == 0 {
                    return Err(ConfigError::ZeroParam {
                        param: "sync_every",
                    });
                }
                if objective == Objective::Center {
                    return Err(ConfigError::CenterObjectiveInContinuous);
                }
            }
            Job::CenterG {
                d_range: Some((d_min, d_max)),
            } if !(d_min.is_finite() && d_max.is_finite() && 0.0 < d_min && d_min <= d_max) => {
                return Err(ConfigError::InvalidDistanceRange { d_min, d_max });
            }
            _ => {}
        }

        let mut warnings: Vec<ConfigWarning> = self
            .unused_knobs
            .iter()
            .map(|&knob| ConfigWarning::KnobUnused {
                knob,
                job: self.job.name(),
            })
            .collect();
        if self.transport_set && !self.job.uses_runtime() {
            warnings.push(ConfigWarning::TransportUnused {
                job: self.job.name(),
            });
        }
        if self.trace.is_some() && !self.job.uses_runtime() {
            warnings.push(ConfigWarning::TraceWithoutProtocol {
                job: self.job.name(),
            });
        }
        if self.trace_format_set && self.trace.is_none() {
            warnings.push(ConfigWarning::TraceFormatWithoutTrace);
        }

        let mut resolved = self;
        if let Some(data) = resolved.data.clone() {
            let (expects, matches) = if resolved.job.is_uncertain() {
                ("uncertain nodes", !data.is_points())
            } else {
                ("points", data.is_points())
            };
            if !matches {
                return Err(ConfigError::DataKindMismatch {
                    job: resolved.job.name(),
                    expects,
                });
            }
            if data.is_empty() {
                return Err(ConfigError::EmptyData);
            }
            if resolved.k > data.len() {
                return Err(ConfigError::KExceedsInput {
                    k: resolved.k,
                    n: data.len(),
                    unit: if resolved.job.is_uncertain() {
                        "nodes"
                    } else {
                        "points"
                    },
                });
            }
            // Pre-sharded data fixes the site count.
            let shard_count = match &*data {
                Dataset::Shards(sh) => Some(sh.len()),
                Dataset::NodeShards(sh) => Some(sh.len()),
                _ => None,
            };
            if let Some(shards) = shard_count {
                if resolved.sites_set && resolved.sites != shards {
                    warnings.push(ConfigWarning::SitesIgnoredForShards {
                        sites: resolved.sites,
                        shards,
                    });
                }
                resolved.sites = shards;
            }
        }
        // After site-count resolution: a mux shard budget beyond the
        // site count leaves event-loop shards with no connections.
        if resolved.transport == TransportKind::Mux
            && resolved.job.uses_runtime()
            && resolved.threads > resolved.sites
        {
            warnings.push(ConfigWarning::MuxShardsExceedSites {
                shards: resolved.threads,
                sites: resolved.sites,
            });
        }

        Ok(ValidJob {
            spec: resolved,
            warnings,
        })
    }
}

/// A validated, runnable job.
#[derive(Clone, Debug)]
pub struct ValidJob {
    spec: JobBuilder,
    warnings: Vec<ConfigWarning>,
}

impl ValidJob {
    /// Structured no-effect diagnostics collected during validation.
    pub fn warnings(&self) -> &[ConfigWarning] {
        &self.warnings
    }

    /// The job kind this will run.
    pub fn job(&self) -> &Job {
        &self.spec.job
    }

    /// Errors unless a dataset is attached ([`Self::run`] needs one;
    /// `Sweep` checks every cell before spawning workers).
    pub(crate) fn require_data(&self) -> Result<(), ConfigError> {
        if self.spec.data.is_none() {
            return Err(ConfigError::MissingData {
                job: self.spec.job.name(),
            });
        }
        Ok(())
    }

    fn kernel_threads(&self) -> ThreadBudget {
        ThreadBudget::new(self.spec.threads)
    }

    fn run_options(&self, rec: &RecorderHandle) -> RunOptions {
        RunOptions {
            parallel: self.spec.parallel,
            faults: self.spec.fault_plan(),
            recorder: rec.clone(),
            // The thread budget doubles as the mux backend's event-loop
            // shard budget (other backends ignore it).
            ..RunOptions::new()
                .transport(self.spec.transport)
                .link(self.spec.link)
                .shards(self.spec.threads)
        }
    }

    /// One collector per run, shared by every layer, present only when
    /// the configuration asked for observability — the disabled path
    /// stays a no-op handle.
    fn collector(&self) -> Option<Arc<Collector>> {
        (self.spec.trace.is_some() || self.spec.metrics).then(|| Arc::new(Collector::new()))
    }

    fn base_artifact(&self, n: usize) -> Artifact {
        self.spec.base_artifact(n)
    }

    /// Executes the job on its attached dataset.
    ///
    /// # Panics
    /// Panics if no dataset was attached (streaming jobs may instead be
    /// fed row by row through [`Self::session`]).
    pub fn run(&self) -> Artifact {
        let data = self.spec.data.clone().unwrap_or_else(|| {
            panic!(
                "{}",
                ConfigError::MissingData {
                    job: self.spec.job.name()
                }
            )
        });
        let s = &self.spec;
        if s.job.is_streaming() {
            // The session owns the run span and the trace finalization.
            let mut session = self.session();
            match &*data {
                Dataset::Points(ps) => {
                    for (_, p) in ps.iter() {
                        session.push(p);
                    }
                }
                // Pre-sharded data fixes the site assignment: shard
                // `i`'s points are ingested at site `i` (shard by
                // shard), not re-dealt round-robin.
                Dataset::Shards(sh) => {
                    for (site, ps) in sh.iter().enumerate() {
                        for (_, p) in ps.iter() {
                            session.push_at(site, p);
                        }
                    }
                }
                _ => unreachable!("validated as point data"),
            }
            return session.finish();
        }
        let collector = self.collector();
        let rec = collector.as_ref().map(|c| c.handle()).unwrap_or_default();
        if rec.enabled() {
            rec.record(run_start(s));
        }
        let mut artifact = match s.job {
            Job::Median
            | Job::Means
            | Job::OneRound {
                objective: Objective::Median,
            }
            | Job::OneRound {
                objective: Objective::Means,
            } => self.run_median_family(&data, &rec),
            Job::Center
            | Job::OneRound {
                objective: Objective::Center,
            } => self.run_center_family(&data, &rec),
            Job::UncertainMedian => self.run_uncertain(&data, &rec),
            Job::CenterG { d_range } => self.run_center_g(&data, d_range, &rec),
            Job::Subquadratic => self.run_subquadratic(&data, &rec),
            Job::Stream { .. } | Job::Continuous { .. } => unreachable!("handled above"),
        };
        if rec.enabled() {
            rec.record(Event::RunEnd {
                rounds: artifact.rounds,
            });
        }
        finalize_observability(s, collector, &mut artifact);
        artifact
    }

    /// Measured objective delta of a codec run against the exact
    /// ([`Encoding::Raw`]) baseline: `(cost - cost_raw) / cost_raw`,
    /// signed. Lossless codecs are `Some(0.0)` by construction — no
    /// baseline rerun; `Raw` has nothing to compare against (`None`).
    fn quality_delta(
        &self,
        encoding: Encoding,
        cost: f64,
        raw_cost: impl FnOnce() -> f64,
    ) -> Option<f64> {
        if encoding == Encoding::Raw {
            return None;
        }
        if encoding.is_lossless() {
            return Some(0.0);
        }
        let raw = raw_cost();
        Some((cost - raw) / raw.abs().max(1e-9))
    }

    fn run_median_family(&self, data: &Dataset, rec: &RecorderHandle) -> Artifact {
        let enc = self.spec.effective_encoding();
        let mut artifact = self.run_median_encoded(data, rec, enc);
        // Lossy codecs pay one silent Raw rerun to measure the quality
        // side of the bytes/quality trade they bought.
        artifact.quality_delta = self.quality_delta(enc, artifact.cost, || {
            self.run_median_encoded(data, &RecorderHandle::noop(), Encoding::Raw)
                .cost
        });
        artifact
    }

    fn run_median_encoded(
        &self,
        data: &Dataset,
        rec: &RecorderHandle,
        encoding: Encoding,
    ) -> Artifact {
        let s = &self.spec;
        let shards = data.point_shards(s.sites, s.strategy, s.seed);
        let means = matches!(
            s.job,
            Job::Means
                | Job::OneRound {
                    objective: Objective::Means
                }
        );
        let one_round = matches!(s.job, Job::OneRound { .. });
        let mut cfg = MedianConfig::new(s.k, s.t);
        cfg.eps = s.eps;
        cfg.rho = s.rho;
        cfg.threads = self.kernel_threads();
        cfg.encoding = encoding;
        if means {
            cfg = cfg.means();
        }
        if s.delta > 0.0 {
            cfg = cfg.counts_only(s.delta);
        }
        let out = if one_round {
            run_one_round_median(&shards, cfg, self.run_options(rec))
        } else {
            run_distributed_median(&shards, cfg, self.run_options(rec))
        };
        let objective = if means {
            Objective::Means
        } else {
            Objective::Median
        };
        let factor = if s.delta > 0.0 {
            2.0 + s.eps + s.delta
        } else {
            1.0 + s.eps
        };
        let budget = (factor * s.t as f64).floor() as usize;
        let (cost, budget) = evaluate_on_full_data_recorded(
            &shards,
            &out.output.centers,
            budget,
            objective,
            self.kernel_threads(),
            rec,
        );
        Artifact {
            centers: centers_to_rows(&out.output.centers),
            cost,
            budget,
            ..self.protocol_artifact(data.len(), &out.stats)
        }
    }

    fn run_center_family(&self, data: &Dataset, rec: &RecorderHandle) -> Artifact {
        let enc = self.spec.effective_encoding();
        let mut artifact = self.run_center_encoded(data, rec, enc);
        artifact.quality_delta = self.quality_delta(enc, artifact.cost, || {
            self.run_center_encoded(data, &RecorderHandle::noop(), Encoding::Raw)
                .cost
        });
        artifact
    }

    fn run_center_encoded(
        &self,
        data: &Dataset,
        rec: &RecorderHandle,
        encoding: Encoding,
    ) -> Artifact {
        let s = &self.spec;
        let shards = data.point_shards(s.sites, s.strategy, s.seed);
        let mut cfg = CenterConfig::new(s.k, s.t);
        cfg.rho = s.rho;
        cfg.threads = self.kernel_threads();
        cfg.encoding = encoding;
        let out = if matches!(s.job, Job::OneRound { .. }) {
            run_one_round_center(&shards, cfg, self.run_options(rec))
        } else {
            run_distributed_center(&shards, cfg, self.run_options(rec))
        };
        let (cost, budget) = evaluate_on_full_data_recorded(
            &shards,
            &out.output.centers,
            s.t,
            Objective::Center,
            self.kernel_threads(),
            rec,
        );
        Artifact {
            centers: centers_to_rows(&out.output.centers),
            cost,
            budget,
            ..self.protocol_artifact(data.len(), &out.stats)
        }
    }

    fn run_uncertain(&self, data: &Dataset, rec: &RecorderHandle) -> Artifact {
        let s = &self.spec;
        let shards = data.node_shards(s.sites);
        let mut cfg = UncertainConfig::new(s.k, s.t);
        cfg.eps = s.eps;
        cfg.rho = s.rho;
        cfg.threads = self.kernel_threads();
        let out = run_uncertain_median(&shards, cfg, self.run_options(rec));
        let budget = ((1.0 + s.eps) * s.t as f64).floor() as usize;
        let cost = estimate_expected_cost_recorded(
            &shards,
            &out.output.centers,
            budget,
            false,
            false,
            self.kernel_threads(),
            rec,
        );
        Artifact {
            centers: centers_to_rows(&out.output.centers),
            cost,
            budget,
            ..self.protocol_artifact(data.len(), &out.stats)
        }
    }

    fn run_center_g(
        &self,
        data: &Dataset,
        d_range: Option<(f64, f64)>,
        rec: &RecorderHandle,
    ) -> Artifact {
        let s = &self.spec;
        let shards = data.node_shards(s.sites);
        let mut cfg = CenterGConfig::new(s.k, s.t);
        cfg.rho = s.rho;
        cfg.threads = self.kernel_threads();
        let out = match d_range {
            Some((d_min, d_max)) => {
                run_center_g_one_round(&shards, cfg, d_min, d_max, self.run_options(rec))
            }
            None => run_center_g(&shards, cfg, self.run_options(rec)),
        };
        Artifact {
            centers: centers_to_rows(&out.output.centers),
            cost: out.output.coordinator_cost,
            budget: s.t,
            ..self.protocol_artifact(data.len(), &out.stats)
        }
    }

    fn run_subquadratic(&self, data: &Dataset, _rec: &RecorderHandle) -> Artifact {
        let s = &self.spec;
        let points = match data {
            Dataset::Points(ps) => ps.clone(),
            Dataset::Shards(sh) => merge_shards(sh),
            _ => unreachable!("validated as point data"),
        };
        let sol = subquadratic_median(
            &points,
            s.k,
            s.t,
            SubquadraticParams {
                eps: s.eps,
                threads: self.kernel_threads(),
                ..Default::default()
            },
        );
        Artifact {
            centers: centers_to_rows(&sol.centers),
            cost: sol.cost,
            budget: sol.excluded,
            ..self.base_artifact(points.len())
        }
    }

    fn protocol_artifact(&self, n: usize, stats: &dpc_coordinator::CommStats) -> Artifact {
        // Raw artifacts carry no codec fields at all, so their JSON
        // stays byte-identical to pre-codec output.
        let enc = self.spec.effective_encoding();
        let (encoding, bytes_raw) = if enc == Encoding::Raw {
            (None, None)
        } else {
            (Some(enc.name().to_string()), Some(stats.raw_bytes()))
        };
        Artifact {
            bytes: stats.total_bytes(),
            rounds: stats.num_rounds(),
            round_stats: round_breakdowns(stats),
            transport: Some(self.spec.transport.name().to_string()),
            network_ms: stats.network_time().as_secs_f64() * 1e3,
            encoding,
            bytes_raw,
            ..self.base_artifact(n)
        }
    }

    /// Opens a row-at-a-time ingest session for a streaming job — how
    /// the CLI feeds CSV rows without materializing the input.
    ///
    /// # Panics
    /// Panics for non-streaming job kinds.
    pub fn session(&self) -> StreamSession {
        assert!(
            self.spec.job.is_streaming(),
            "'{}' is a batch job; attach a dataset and call run()",
            self.spec.job.name()
        );
        let collector = self.collector();
        let recorder = collector.as_ref().map(|c| c.handle()).unwrap_or_default();
        if recorder.enabled() {
            recorder.record(run_start(&self.spec));
        }
        StreamSession {
            spec: self.spec.clone(),
            collector,
            recorder,
            mode: None,
            rows: 0,
            started: Instant::now(),
        }
    }
}

/// The run-opening event every traced job emits (the api layer owns the
/// run span: continuous jobs execute many protocol drives per trace).
fn run_start(spec: &JobBuilder) -> Event {
    Event::RunStart {
        label: spec.job.name().to_string(),
        sites: spec.sites,
        seed: spec.seed,
        fault_seed: spec.fault_seed,
    }
}

/// Drains a run's collector: writes the trace file when one was
/// requested and attaches the metrics digest to the artifact.
///
/// # Panics
/// Panics if the trace file cannot be written.
fn finalize_observability(
    spec: &JobBuilder,
    collector: Option<Arc<Collector>>,
    artifact: &mut Artifact,
) {
    let Some(collector) = collector else { return };
    let trace = collector.snapshot();
    if let Some(path) = &spec.trace {
        let doc = match spec.trace_format {
            TraceFormat::Jsonl => trace.to_jsonl(),
            TraceFormat::Chrome => trace.to_chrome(),
        };
        if let Err(e) = std::fs::write(path, doc) {
            panic!("failed to write trace file '{}': {e}", path.display());
        }
    }
    if spec.metrics {
        artifact.metrics = Some(trace.metrics().summary());
    }
}

/// Row-at-a-time execution of a streaming job.
pub struct StreamSession {
    spec: JobBuilder,
    collector: Option<Arc<Collector>>,
    recorder: RecorderHandle,
    mode: Option<SessionMode>,
    rows: usize,
    started: Instant,
}

enum SessionMode {
    Engine(StreamEngine),
    Window(SlidingWindowEngine),
    Continuous(ContinuousCluster),
}

impl StreamSession {
    fn stream_config(&self) -> StreamConfig {
        let s = &self.spec;
        let objective = match s.job {
            Job::Stream { objective, .. } | Job::Continuous { objective, .. } => objective,
            _ => unreachable!("sessions only open on streaming jobs"),
        };
        let mut cfg = StreamConfig::new(s.k, s.t)
            .block(s.block)
            .eps(s.eps)
            .threads(s.threads);
        cfg = match objective {
            Objective::Median => cfg,
            Objective::Means => cfg.means(),
            Objective::Center => cfg.center(),
        };
        cfg
    }

    /// Feeds one point, in arrival order. In continuous mode points are
    /// dealt to sites round-robin; use [`Self::push_at`] to control the
    /// site.
    pub fn push(&mut self, coords: &[f64]) {
        self.push_at(self.rows % self.spec.sites, coords);
    }

    /// Feeds one point at an explicit site (continuous mode; the
    /// single-machine modes have one engine and ignore `site`).
    pub fn push_at(&mut self, site: usize, coords: &[f64]) {
        // First push fixes the dimension and builds the engine; later
        // pushes skip all configuration work (this is the per-row hot
        // path of CLI ingest).
        if self.mode.is_none() {
            let spec = &self.spec;
            let cfg = self.stream_config();
            let dim = coords.len();
            self.mode = Some(match spec.job {
                Job::Continuous { sync_every, .. } => {
                    let ccfg = ContinuousConfig {
                        stream: cfg,
                        eps: spec.eps,
                        rho: spec.rho,
                        parallel: spec.parallel,
                        ..ContinuousConfig::new(spec.k, spec.t)
                    }
                    .sync_every(sync_every)
                    .transport(spec.transport)
                    .link(spec.link)
                    .faults(spec.fault_plan())
                    .encoding(spec.effective_encoding());
                    SessionMode::Continuous(
                        ContinuousCluster::new(dim, spec.sites, ccfg)
                            .with_recorder(self.recorder.clone()),
                    )
                }
                Job::Stream { window, .. } if window > 0 => {
                    SessionMode::Window(SlidingWindowEngine::new(dim, window, cfg))
                }
                _ => {
                    let mut e = StreamEngine::new(dim, cfg);
                    e.set_recorder(self.recorder.clone());
                    SessionMode::Engine(e)
                }
            });
        }
        match self.mode.as_mut().expect("initialized above") {
            SessionMode::Engine(e) => e.push(coords),
            SessionMode::Window(e) => e.push(coords),
            SessionMode::Continuous(c) => {
                c.ingest(site % self.spec.sites, coords);
            }
        }
        self.rows += 1;
    }

    /// Points ingested so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Finishes the stream (flushing partial blocks, running a final
    /// covering sync in continuous mode) and produces the artifact.
    pub fn finish(self) -> Artifact {
        let StreamSession {
            spec,
            collector,
            recorder,
            mode,
            rows,
            started,
        } = self;
        let budget = ((1.0 + spec.eps) * spec.t as f64).floor() as usize;
        let mut artifact = match mode {
            None => spec.base_artifact(0),
            Some(SessionMode::Engine(mut e)) => {
                e.flush();
                let sol = e.solve();
                Artifact {
                    centers: centers_to_rows(&sol.centers),
                    cost: sol.cost,
                    budget,
                    live_points: Some(sol.live_points),
                    ..spec.base_artifact(rows)
                }
            }
            Some(SessionMode::Window(e)) => {
                let sol = e.solve();
                Artifact {
                    centers: centers_to_rows(&sol.centers),
                    cost: sol.cost,
                    budget,
                    live_points: Some(sol.live_points),
                    ..spec.base_artifact(rows)
                }
            }
            Some(SessionMode::Continuous(mut c)) => {
                c.sync_if_stale();
                let mut round_stats = Vec::new();
                for rec in &c.history {
                    round_stats.extend(round_breakdowns(&rec.stats));
                }
                let rec = c.latest().expect("sync just ran");
                let enc = spec.effective_encoding();
                let (encoding, bytes_raw) = if enc == Encoding::Raw {
                    (None, None)
                } else {
                    (
                        Some(enc.name().to_string()),
                        Some(c.history.iter().map(|r| r.stats.raw_bytes()).sum()),
                    )
                };
                // No Raw baseline rerun here: a continuous stream cannot
                // be replayed from inside the session, so only lossless
                // codecs get a (trivially zero) quality delta.
                let quality_delta = (enc != Encoding::Raw && enc.is_lossless()).then_some(0.0);
                Artifact {
                    encoding,
                    bytes_raw,
                    quality_delta,
                    centers: centers_to_rows(&rec.centers),
                    cost: rec.cost,
                    budget,
                    bytes: c.total_comm_bytes(),
                    rounds: c.history.iter().map(|r| r.stats.num_rounds()).sum(),
                    round_stats,
                    live_points: Some(c.live_points()),
                    syncs: Some(c.history.len()),
                    transport: Some(spec.transport.name().to_string()),
                    network_ms: c
                        .history
                        .iter()
                        .map(|r| r.stats.network_time().as_secs_f64() * 1e3)
                        .sum(),
                    ..spec.base_artifact(rows)
                }
            }
        };
        artifact.points_per_sec = Some(rows as f64 / started.elapsed().as_secs_f64().max(1e-9));
        if recorder.enabled() {
            recorder.record(Event::RunEnd {
                rounds: artifact.rounds,
            });
        }
        finalize_observability(&spec, collector, &mut artifact);
        artifact
    }
}

fn centers_to_rows(ps: &PointSet) -> Vec<Vec<f64>> {
    (0..ps.len()).map(|i| ps.point(i).to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_workloads::{gaussian_mixture, MixtureSpec};

    fn mix(n: usize, t: usize) -> PointSet {
        gaussian_mixture(MixtureSpec {
            clusters: 3,
            inliers: n,
            outliers: t,
            seed: 7,
            ..Default::default()
        })
        .points
    }

    #[test]
    fn median_job_runs_end_to_end() {
        let art = Job::median(3, 4)
            .sites(3)
            .eps(0.5)
            .points(mix(300, 4))
            .validate()
            .unwrap()
            .run();
        assert_eq!(art.job, "median");
        assert_eq!(art.rounds, 2);
        assert!(art.bytes > 0);
        assert_eq!(art.centers.len(), 3);
        assert!(art.cost.is_finite());
        assert_eq!(art.transport.as_deref(), Some("channel"));
        assert_eq!(art.bytes, art.upstream_bytes() + art.downstream_bytes());
    }

    #[test]
    fn validate_catches_hard_errors() {
        assert_eq!(
            Job::median(0, 1).validate().unwrap_err(),
            ConfigError::ZeroParam { param: "k" }
        );
        assert_eq!(
            Job::median(2, 1).sites(0).validate().unwrap_err(),
            ConfigError::ZeroParam { param: "sites" }
        );
        assert_eq!(
            Job::stream(2, 1).eps(0.0).validate().unwrap_err(),
            ConfigError::ExactOutlierQueries
        );
        assert!(matches!(
            Job::median(2, 1).eps(f64::NAN).validate().unwrap_err(),
            ConfigError::NonFinite { param: "eps", .. }
        ));
        assert!(matches!(
            Job::stream(2, 1)
                .block(64)
                .window(10)
                .validate()
                .unwrap_err(),
            ConfigError::WindowBelowBlock { .. }
        ));
        assert_eq!(
            Job::continuous(2, 1)
                .objective(Objective::Center)
                .validate()
                .unwrap_err(),
            ConfigError::CenterObjectiveInContinuous
        );
        assert!(matches!(
            Job::center_g(2, 1)
                .d_range(-1.0, 2.0)
                .validate()
                .unwrap_err(),
            ConfigError::InvalidDistanceRange { .. }
        ));
        let pts = mix(20, 0);
        let n = pts.len();
        assert_eq!(
            Job::median(50, 0).points(pts).validate().unwrap_err(),
            ConfigError::KExceedsInput {
                k: 50,
                n,
                unit: "points"
            }
        );
        assert!(matches!(
            Job::uncertain_median(2, 0)
                .points(mix(20, 0))
                .validate()
                .unwrap_err(),
            ConfigError::DataKindMismatch { .. }
        ));
    }

    #[test]
    fn dropout_validation_and_degraded_artifact() {
        assert_eq!(
            Job::median(2, 1).dropout(1.0).validate().unwrap_err(),
            ConfigError::DropoutOutOfRange { value: 1.0 }
        );
        assert!(matches!(
            Job::median(2, 1).dropout(f64::NAN).validate().unwrap_err(),
            ConfigError::DropoutOutOfRange { .. }
        ));
        // A heavily faulted run still completes, and the artifact carries
        // the per-round fault accounting.
        let art = Job::median(3, 4)
            .sites(6)
            .eps(0.5)
            .dropout(0.4)
            .fault_seed(6)
            .points(mix(300, 4))
            .validate()
            .unwrap()
            .run();
        assert_eq!(art.rounds, 2);
        assert_eq!(art.centers.len(), 3);
        assert!(art.cost.is_finite());
        assert!(
            art.degraded_rounds() > 0,
            "dropout 0.4 over 6 sites x 2 rounds should degrade at least one round: {:?}",
            art.round_stats
        );
        assert_eq!(
            art.total_dropouts(),
            art.round_stats.iter().map(|r| r.dropouts).sum::<usize>()
        );
        // Same seeds ⇒ byte-identical artifact (modulo wall-clock times).
        let art2 = Job::median(3, 4)
            .sites(6)
            .eps(0.5)
            .dropout(0.4)
            .fault_seed(6)
            .points(mix(300, 4))
            .validate()
            .unwrap()
            .run();
        assert_eq!(art.centers, art2.centers);
        for (a, b) in art.round_stats.iter().zip(&art2.round_stats) {
            assert_eq!(a.bytes_down, b.bytes_down);
            assert_eq!(a.bytes_up, b.bytes_up);
            assert_eq!(
                (a.dropouts, a.retries, a.degraded),
                (b.dropouts, b.retries, b.degraded)
            );
        }
    }

    #[test]
    fn fault_knobs_warn_on_non_runtime_jobs() {
        let vj = Job::stream(2, 1)
            .dropout(0.1)
            .retries(2)
            .points(mix(100, 1))
            .validate()
            .unwrap();
        assert!(
            vj.warnings().iter().any(|w| matches!(
                w,
                ConfigWarning::KnobUnused {
                    knob: "dropout",
                    ..
                }
            )),
            "{:?}",
            vj.warnings()
        );
    }

    #[test]
    fn no_effect_knobs_warn_but_run() {
        let vj = Job::subquadratic(2, 1)
            .transport(TransportKind::Tcp)
            .block(64)
            .points(mix(100, 1))
            .validate()
            .unwrap();
        let warnings = vj.warnings();
        assert!(
            warnings.iter().any(|w| matches!(
                w,
                ConfigWarning::TransportUnused {
                    job: "subquadratic"
                }
            )),
            "{warnings:?}"
        );
        assert!(
            warnings
                .iter()
                .any(|w| matches!(w, ConfigWarning::KnobUnused { knob: "block", .. })),
            "{warnings:?}"
        );
        let art = vj.run();
        assert_eq!(art.transport, None);
        assert!(art.cost.is_finite());
    }

    #[test]
    fn encoded_jobs_carry_codec_accounting() {
        let pts = mix(300, 4);
        let raw = Job::median(3, 4)
            .sites(3)
            .eps(0.5)
            .points(pts.clone())
            .validate()
            .unwrap()
            .run();
        assert_eq!(raw.encoding, None);
        assert_eq!(raw.bytes_raw, None);
        assert_eq!(raw.quality_delta, None);

        // Lossy: fewer bytes, exact raw accounting, measured delta.
        let f32_run = Job::median(3, 4)
            .sites(3)
            .eps(0.5)
            .encoding(Encoding::F32)
            .points(pts.clone())
            .validate()
            .unwrap()
            .run();
        assert_eq!(f32_run.encoding.as_deref(), Some("f32"));
        assert_eq!(f32_run.bytes_raw, Some(raw.bytes));
        assert!(
            f32_run.bytes < raw.bytes,
            "{} vs {}",
            f32_run.bytes,
            raw.bytes
        );
        let qd = f32_run.quality_delta.expect("lossy runs measure quality");
        assert!(qd.abs() <= 0.05, "f32 quality delta too large: {qd}");

        // Lossless: identical answer, zero delta by construction.
        let delta_run = Job::median(3, 4)
            .sites(3)
            .eps(0.5)
            .encoding(Encoding::Delta)
            .points(pts.clone())
            .validate()
            .unwrap()
            .run();
        assert_eq!(delta_run.centers, raw.centers);
        assert_eq!(delta_run.cost, raw.cost);
        assert_eq!(delta_run.quality_delta, Some(0.0));

        // Jobs whose wire never sees the codec warn and stay raw.
        let vj = Job::subquadratic(2, 1)
            .encoding(Encoding::F16)
            .points(mix(100, 1))
            .validate()
            .unwrap();
        assert!(
            vj.warnings().iter().any(|w| matches!(
                w,
                ConfigWarning::KnobUnused {
                    knob: "encoding",
                    ..
                }
            )),
            "{:?}",
            vj.warnings()
        );
        assert_eq!(vj.run().encoding, None);
    }

    #[test]
    fn mux_shard_budget_beyond_sites_warns_but_runs() {
        let vj = Job::median(2, 1)
            .transport(TransportKind::Mux)
            .sites(2)
            .threads(8)
            .points(mix(100, 1))
            .validate()
            .unwrap();
        assert!(
            vj.warnings().iter().any(|w| matches!(
                w,
                ConfigWarning::MuxShardsExceedSites {
                    shards: 8,
                    sites: 2
                }
            )),
            "{:?}",
            vj.warnings()
        );
        let art = vj.run();
        assert_eq!(art.sites, 2);
        // A budget within the site count is clean.
        let vj = Job::median(2, 1)
            .transport(TransportKind::Mux)
            .sites(4)
            .threads(2)
            .points(mix(100, 1))
            .validate()
            .unwrap();
        assert!(
            !vj.warnings()
                .iter()
                .any(|w| matches!(w, ConfigWarning::MuxShardsExceedSites { .. })),
            "{:?}",
            vj.warnings()
        );
    }

    #[test]
    fn shards_fix_the_site_count() {
        let points = mix(200, 2);
        let shards = dpc_workloads::partition(&points, 5, PartitionStrategy::RoundRobin, &[], 1);
        let vj = Job::center(2, 2)
            .sites(3)
            .shards(shards)
            .validate()
            .unwrap();
        assert!(vj.warnings().iter().any(|w| matches!(
            w,
            ConfigWarning::SitesIgnoredForShards {
                sites: 3,
                shards: 5
            }
        )));
        let art = vj.run();
        assert_eq!(art.sites, 5);
        assert_eq!(art.rounds, 2);
    }

    #[test]
    fn stream_session_matches_run() {
        let points = mix(400, 3);
        let job = Job::stream(3, 3).block(64).points(points.clone());
        let a = job.clone().validate().unwrap().run();
        let vj = job.validate().unwrap();
        let mut session = vj.session();
        for (_, p) in points.iter() {
            session.push(p);
        }
        let b = session.finish();
        assert_eq!(a.centers, b.centers);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.live_points, b.live_points);
        assert_eq!(a.n, b.n);
    }

    #[test]
    fn continuous_shards_keep_their_sites() {
        // Pre-sharded continuous input: shard i's points must be
        // ingested at site i, matching a hand-driven fleet exactly.
        let mk_shard = |center: f64, n: usize| {
            let mut ps = PointSet::new(2);
            for i in 0..n {
                ps.push(&[center + 0.01 * (i % 7) as f64, 0.0]);
            }
            ps
        };
        let shards = vec![mk_shard(0.0, 120), mk_shard(500.0, 120)];
        let artifact = Job::continuous(2, 1)
            .block(32)
            .sync_every(80)
            .sequential()
            .shards(shards.clone())
            .validate()
            .unwrap()
            .run();
        let cfg = ContinuousConfig {
            stream: StreamConfig::new(2, 1).block(32),
            ..ContinuousConfig::new(2, 1)
        }
        .sync_every(80);
        let mut fleet = ContinuousCluster::new(2, 2, cfg);
        for (site, ps) in shards.iter().enumerate() {
            for (_, p) in ps.iter() {
                fleet.ingest(site, p);
            }
        }
        fleet.sync_if_stale();
        let rec = fleet.latest().unwrap();
        assert_eq!(artifact.sites, 2);
        assert_eq!(artifact.syncs, Some(fleet.history.len()));
        assert_eq!(artifact.bytes, fleet.total_comm_bytes());
        assert_eq!(artifact.centers, centers_to_rows(&rec.centers));
    }

    #[test]
    fn continuous_job_charges_sync_bytes() {
        let art = Job::continuous(2, 2)
            .sync_every(100)
            .block(32)
            .sites(2)
            .sequential()
            .points(mix(300, 2))
            .validate()
            .unwrap()
            .run();
        let syncs = art.syncs.unwrap();
        assert!(syncs >= 2, "{syncs}");
        assert_eq!(art.rounds, 2 * syncs);
        assert!(art.bytes > 0);
        assert_eq!(art.round_stats.len(), art.rounds);
        assert_eq!(art.transport.as_deref(), Some("channel"));
    }
}
