//! # Distributed Partial Clustering
//!
//! A from-scratch Rust implementation of *Distributed Partial Clustering*
//! (Guha, Li, Zhang — SPAA 2017): communication-efficient distributed
//! `(k,t)`-median, `(k,t)`-means and `(k,t)`-center clustering — `k`
//! centers, up to `t` points disregarded as outliers — plus the paper's
//! uncertain-data algorithms and its subquadratic centralized corollary.
//!
//! This facade re-exports the whole workspace:
//!
//! * [`metric`] — points, distance oracles, weighted sets, outlier-aware
//!   costs, wire encoding;
//! * [`cluster`] — centralized substrates (Gonzalez, Charikar-style
//!   `(k,t)`-center, Lagrangian bicriteria `(k,t)`-median/means, Lloyd,
//!   exact oracles);
//! * [`coordinator`] — the transport-abstracted coordinator-model
//!   runtime: persistent in-process site workers or loopback TCP sockets
//!   behind one `Transport` trait, exact byte accounting, and a simulated
//!   link model;
//! * [`core`] — Algorithms 1–2, the Theorem 3.8 δ-variant, 1-round
//!   baselines, and the Theorem 3.10 subquadratic centralized algorithm;
//! * [`uncertain`] — uncertain nodes, the compressed graph (Figure 1),
//!   Algorithm 3, and the center-g Algorithm 4;
//! * [`stream`] — the streaming layer: merge-and-reduce coresets, sliding
//!   windows, and continuous distributed clustering with per-sync
//!   communication accounting;
//! * [`workloads`] — seeded synthetic workload generators.
//!
//! ## Quickstart
//!
//! ```
//! use dpc::prelude::*;
//!
//! // Generate a noisy mixture and split it across 4 sites.
//! let mix = gaussian_mixture(MixtureSpec { inliers: 200, outliers: 5, ..Default::default() });
//! let shards = partition(&mix.points, 4, PartitionStrategy::Random, &mix.outlier_ids, 7);
//!
//! // Run the 2-round distributed (k, (1+eps)t)-median protocol.
//! let cfg = MedianConfig::new(5, 5);
//! let out = run_distributed_median(&shards, cfg, RunOptions::default());
//!
//! // Exact bytes on the wire, and the solution quality on the full data.
//! println!("{} bytes over {} rounds", out.stats.total_bytes(), out.stats.num_rounds());
//! let (cost, _) = evaluate_on_full_data(&shards, &out.output.centers, 10, Objective::Median);
//! assert!(cost.is_finite());
//! ```

pub use dpc_cluster as cluster;
pub use dpc_coordinator as coordinator;
pub use dpc_core as core;
pub use dpc_metric as metric;
pub use dpc_stream as stream;
pub use dpc_uncertain as uncertain;
pub use dpc_workloads as workloads;

/// One-stop imports for applications and examples.
pub mod prelude {
    pub use dpc_cluster::{
        charikar_center, exact_best, gonzalez, lloyd_kmeans, median_bicriteria, BicriteriaParams,
        CenterParams, LloydParams, LocalSearchParams, Solution,
    };
    pub use dpc_coordinator::{CommStats, LinkModel, RunOptions, TransportKind};
    pub use dpc_core::{
        evaluate_on_full_data, merge_shards, run_distributed_center, run_distributed_median,
        run_one_round_center, run_one_round_median, subquadratic_median, CenterConfig,
        DeltaVariant, MedianConfig, SubquadraticParams,
    };
    pub use dpc_metric::{
        center_cost, means_cost, median_cost, EuclideanMetric, Metric, Objective, PointSet,
        SquaredMetric, WeightedSet,
    };
    pub use dpc_stream::{
        ContinuousCluster, ContinuousConfig, SlidingWindowEngine, StreamConfig, StreamEngine,
        StreamSolution, Summary, SummaryParams, SyncRecord,
    };
    pub use dpc_uncertain::{
        estimate_center_g_cost, estimate_expected_cost, run_center_g, run_uncertain_median,
        CenterGConfig, CompressedGraph, NodeSet, UncertainConfig, UncertainNode,
    };
    pub use dpc_workloads::{
        drifting_stream, gaussian_mixture, partition, uncertain_mixture, DriftSpec, DriftStream,
        Mixture, MixtureSpec, PartitionStrategy, UncertainSpec,
    };
}
