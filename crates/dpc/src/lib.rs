//! # Distributed Partial Clustering
//!
//! A from-scratch Rust implementation of *Distributed Partial Clustering*
//! (Guha, Li, Zhang — SPAA 2017): communication-efficient distributed
//! `(k,t)`-median, `(k,t)`-means and `(k,t)`-center clustering — `k`
//! centers, up to `t` points disregarded as outliers — plus the paper's
//! uncertain-data algorithms and its subquadratic centralized corollary.
//!
//! This facade re-exports the whole workspace:
//!
//! * [`api`] — **the front door**: describe any run as a typed
//!   [`Job`](api::Job), validate it, execute it, get an
//!   [`Artifact`](api::Artifact); sweep parameter grids in parallel with
//!   [`Sweep`](api::Sweep);
//! * [`metric`] — points, distance oracles, weighted sets, outlier-aware
//!   costs, wire encoding;
//! * [`cluster`] — centralized substrates (Gonzalez, Charikar-style
//!   `(k,t)`-center, Lagrangian bicriteria `(k,t)`-median/means, Lloyd,
//!   exact oracles);
//! * [`codec`] — the wire codec subsystem: pluggable lossless and lossy
//!   message encodings (`raw`/`f32`/`f16`/`delta`/`rlz`) that trade wire
//!   bytes against solution quality;
//! * [`coordinator`] — the transport-abstracted coordinator-model
//!   runtime: persistent in-process site workers or loopback TCP sockets
//!   behind one `Transport` trait, exact byte accounting, and a simulated
//!   link model;
//! * [`core`] — Algorithms 1–2, the Theorem 3.8 δ-variant, 1-round
//!   baselines, and the Theorem 3.10 subquadratic centralized algorithm;
//! * [`uncertain`] — uncertain nodes, the compressed graph (Figure 1),
//!   Algorithm 3, and the center-g Algorithm 4;
//! * [`stream`] — the streaming layer: merge-and-reduce coresets, sliding
//!   windows, and continuous distributed clustering with per-sync
//!   communication accounting;
//! * [`workloads`] — seeded synthetic workload generators;
//! * [`obs`] — structured tracing and metrics: deterministic JSONL run
//!   traces, Chrome trace-event export, and an aggregating
//!   [`MetricsReport`](obs::MetricsReport), all zero-cost when disabled.
//!
//! ## Quickstart
//!
//! ```
//! use dpc::prelude::*;
//!
//! // Generate a noisy mixture; the job partitions it across 4 sites.
//! let mix = gaussian_mixture(MixtureSpec { inliers: 200, outliers: 5, ..Default::default() });
//!
//! // The 2-round distributed (k, (1+eps)t)-median protocol, through the
//! // typed front door: build, validate, run.
//! let artifact = Job::median(5, 5)
//!     .sites(4)
//!     .points(mix.points)
//!     .validate()
//!     .expect("sound config")
//!     .run();
//!
//! // Exact bytes on the wire, and the solution quality on the full data.
//! println!("{} bytes over {} rounds", artifact.bytes, artifact.rounds);
//! assert!(artifact.cost.is_finite());
//! ```
//!
//! ## Sweeps
//!
//! ```
//! use dpc::prelude::*;
//!
//! let mix = gaussian_mixture(MixtureSpec { inliers: 150, outliers: 4, ..Default::default() });
//! let artifacts = Sweep::grid(Job::median(0, 0).sites(3).points(mix.points))
//!     .k(&[3, 5])
//!     .t(&[2, 4])
//!     .run()
//!     .expect("every cell validates");
//! assert_eq!(artifacts.len(), 4);
//! println!("{}", dpc::api::csv_table(&artifacts));
//! ```
//!
//! ## Migrating from the free functions
//!
//! The historical entry points (`run_distributed_median`,
//! `run_one_round_center`, `subquadratic_median`, …) still work and are
//! exactly what [`api::Job`] drives under the hood — job-driven runs are
//! byte-identical — but their prelude re-exports are deprecated. Replace
//!
//! ```text
//! run_distributed_median(&shards, MedianConfig::new(k, t), RunOptions::default())
//! ```
//!
//! with
//!
//! ```text
//! Job::median(k, t).shards(shards).validate()?.run()
//! ```
//!
//! Code that needs the raw `ProtocolOutput` (e.g. to inspect
//! coordinator-side weights) can keep calling the originals at their
//! crate-level paths ([`core`], [`uncertain`]) without deprecation.

pub use dpc_api as api;
pub use dpc_cluster as cluster;
pub use dpc_codec as codec;
pub use dpc_coordinator as coordinator;
pub use dpc_core as core;
pub use dpc_metric as metric;
pub use dpc_obs as obs;
pub use dpc_stream as stream;
pub use dpc_uncertain as uncertain;
pub use dpc_workloads as workloads;

/// Deprecated free-function entry points, kept as thin shims so existing
/// code migrates to [`api::Job`] on its own schedule without breaking.
mod shims {
    use dpc_coordinator::{ProtocolOutput, RunOptions};
    use dpc_core::subquadratic::CentralizedSolution;
    use dpc_core::{CenterConfig, DistributedSolution, MedianConfig, SubquadraticParams};
    use dpc_metric::PointSet;
    use dpc_uncertain::{CenterGConfig, NodeSet, UncertainConfig, UncertainSolution};

    #[deprecated(note = "use dpc::api::Job::median(k, t).shards(..).validate()?.run()")]
    /// Deprecated shim for [`dpc_core::run_distributed_median`].
    pub fn run_distributed_median(
        shards: &[PointSet],
        cfg: MedianConfig,
        options: RunOptions,
    ) -> ProtocolOutput<DistributedSolution> {
        dpc_core::run_distributed_median(shards, cfg, options)
    }

    #[deprecated(note = "use dpc::api::Job::center(k, t).shards(..).validate()?.run()")]
    /// Deprecated shim for [`dpc_core::run_distributed_center`].
    pub fn run_distributed_center(
        shards: &[PointSet],
        cfg: CenterConfig,
        options: RunOptions,
    ) -> ProtocolOutput<DistributedSolution> {
        dpc_core::run_distributed_center(shards, cfg, options)
    }

    #[deprecated(note = "use dpc::api::Job::one_round(Objective::Median, k, t)")]
    /// Deprecated shim for [`dpc_core::run_one_round_median`].
    pub fn run_one_round_median(
        shards: &[PointSet],
        cfg: MedianConfig,
        options: RunOptions,
    ) -> ProtocolOutput<DistributedSolution> {
        dpc_core::run_one_round_median(shards, cfg, options)
    }

    #[deprecated(note = "use dpc::api::Job::one_round(Objective::Center, k, t)")]
    /// Deprecated shim for [`dpc_core::run_one_round_center`].
    pub fn run_one_round_center(
        shards: &[PointSet],
        cfg: CenterConfig,
        options: RunOptions,
    ) -> ProtocolOutput<DistributedSolution> {
        dpc_core::run_one_round_center(shards, cfg, options)
    }

    #[deprecated(note = "use dpc::api::Job::subquadratic(k, t).points(..)")]
    /// Deprecated shim for [`dpc_core::subquadratic_median`].
    pub fn subquadratic_median(
        points: &PointSet,
        k: usize,
        t: usize,
        params: SubquadraticParams,
    ) -> CentralizedSolution {
        dpc_core::subquadratic_median(points, k, t, params)
    }

    #[deprecated(note = "use dpc::api::Job::uncertain_median(k, t).data(..)")]
    /// Deprecated shim for [`dpc_uncertain::run_uncertain_median`].
    pub fn run_uncertain_median(
        shards: &[NodeSet],
        cfg: UncertainConfig,
        options: RunOptions,
    ) -> ProtocolOutput<UncertainSolution> {
        dpc_uncertain::run_uncertain_median(shards, cfg, options)
    }

    #[deprecated(note = "use dpc::api::Job::center_g(k, t).data(..)")]
    /// Deprecated shim for [`dpc_uncertain::run_center_g`].
    pub fn run_center_g(
        shards: &[NodeSet],
        cfg: CenterGConfig,
        options: RunOptions,
    ) -> ProtocolOutput<UncertainSolution> {
        dpc_uncertain::run_center_g(shards, cfg, options)
    }
}

/// One-stop imports for applications and examples.
pub mod prelude {
    // The re-export itself must not warn; call sites still do.
    #[allow(deprecated)]
    pub use crate::shims::{
        run_center_g, run_distributed_center, run_distributed_median, run_one_round_center,
        run_one_round_median, run_uncertain_median, subquadratic_median,
    };
    pub use dpc_api::{
        Artifact, ConfigError, ConfigWarning, Dataset, Job, JobBuilder, RoundBreakdown,
        StreamSession, Sweep, TraceFormat, ValidJob,
    };
    pub use dpc_cluster::{
        charikar_center, exact_best, gonzalez, lloyd_kmeans, median_bicriteria, BicriteriaParams,
        CenterParams, LloydParams, LocalSearchParams, Solution,
    };
    pub use dpc_codec::Encoding;
    pub use dpc_coordinator::{CommStats, FaultPlan, LinkModel, RunOptions, TransportKind};
    pub use dpc_core::{
        evaluate_on_full_data, merge_shards, CenterConfig, DeltaVariant, MedianConfig,
        SubquadraticParams,
    };
    pub use dpc_metric::{
        center_cost, means_cost, median_cost, CenterBlock, EuclideanMetric, Metric,
        NearestAssigner, Objective, PointSet, SquaredMetric, ThreadBudget, WeightedSet,
    };
    pub use dpc_stream::{
        ContinuousCluster, ContinuousConfig, SlidingWindowEngine, StreamConfig, StreamEngine,
        StreamSolution, Summary, SummaryParams, SyncRecord,
    };
    pub use dpc_uncertain::{
        estimate_center_g_cost, estimate_expected_cost, CenterGConfig, CompressedGraph, NodeSet,
        UncertainConfig, UncertainNode,
    };
    pub use dpc_workloads::{
        drifting_stream, gaussian_blobs, gaussian_mixture, partition, uncertain_mixture, BlobsSpec,
        DriftSpec, DriftStream, Mixture, MixtureSpec, PartitionStrategy, UncertainSpec,
    };
}
