//! Lossy coordinate narrowing: `F32` (binary32, 4 bytes/coordinate) and
//! `F16` (binary16, 2 bytes/coordinate).
//!
//! Both modes cast each coordinate directly to the narrower type —
//! there is deliberately no shared scale factor. A per-span or
//! per-frame scale would make the error *absolute* in the span's range,
//! so one far outlier (exactly what partial clustering workloads
//! contain) would destroy the precision of every clustered coordinate.
//! A direct cast keeps the error *relative* to each coordinate's own
//! magnitude, which is what the declared envelopes promise.
//!
//! A span whose values exceed the narrow type's finite range falls back
//! to verbatim `f64` storage (one flag byte per span), so the envelope
//! holds for every payload, not just well-scaled ones. NaN and ±∞
//! survive as themselves.

use crate::{skeleton, Codec, CoordSpan, Encoding};
use half::f16;

/// Declared per-coordinate error envelope of [`Encoding::F32`]:
/// `|x|·2⁻²³ + 2⁻¹⁴⁰`.
///
/// A binary32 round-to-nearest carries relative error at most `2⁻²⁴`;
/// the declared bound doubles it for slack and adds a tiny absolute
/// floor covering subnormal underflow (values below the binary32
/// subnormal range round to zero with absolute error < `2⁻¹⁴⁹`).
pub fn f32_declared_eps(x: f64) -> f64 {
    x.abs() * (2.0f64).powi(-23) + (2.0f64).powi(-140)
}

/// Declared per-coordinate error envelope of [`Encoding::F16`]:
/// `|x|·2⁻¹⁰ + 2⁻²⁴`.
///
/// A binary16 round-to-nearest carries relative error at most `2⁻¹¹`;
/// the declared bound doubles it to cover the f64 → f32 → f16 double
/// rounding, and the absolute floor covers subnormal underflow (the
/// smallest positive binary16 subnormal is `2⁻²⁴`).
pub fn f16_declared_eps(x: f64) -> f64 {
    x.abs() * (2.0f64).powi(-10) + (2.0f64).powi(-24)
}

/// Whether every value of a span survives the narrow type's finite
/// range (NaN and ±∞ map to themselves and never block narrowing).
fn fits(values: &[f64], max_finite: f64) -> bool {
    values
        .iter()
        .all(|v| !v.is_finite() || v.abs() <= max_finite)
}

/// Span flag: values stored in the narrow type.
const NARROW: u8 = 1;
/// Span flag: values stored verbatim as `f64` (out-of-range fallback).
const VERBATIM: u8 = 0;

fn encode_with<F: Fn(f64) -> Vec<u8>>(
    payload: &[u8],
    spans: &[CoordSpan],
    max_finite: f64,
    narrow: F,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() / 2 + 16);
    skeleton::write(&mut out, payload, spans);
    for span in spans {
        let values = skeleton::span_values(payload, span);
        if fits(&values, max_finite) {
            out.push(NARROW);
            for v in values {
                out.extend_from_slice(&narrow(v));
            }
        } else {
            out.push(VERBATIM);
            for v in values {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
    }
    out
}

fn decode_with<F: Fn(&[u8]) -> f64>(
    body: &[u8],
    raw_len: usize,
    width: usize,
    widen: F,
) -> Vec<u8> {
    let mut pos = 0usize;
    let (mut payload, spans) = skeleton::read(body, &mut pos);
    for span in &spans {
        let flag = body[pos];
        pos += 1;
        let values: Vec<f64> = match flag {
            NARROW => (0..span.values())
                .map(|i| widen(&body[pos + i * width..pos + (i + 1) * width]))
                .collect(),
            VERBATIM => (0..span.values())
                .map(|i| {
                    f64::from_le_bytes(body[pos + i * 8..pos + (i + 1) * 8].try_into().unwrap())
                })
                .collect(),
            other => panic!("lossy codec: bad span flag {other}"),
        };
        pos += span.values() * if flag == NARROW { width } else { 8 };
        skeleton::write_span_values(&mut payload, span, &values);
    }
    assert_eq!(pos, body.len(), "lossy codec: trailing bytes in body");
    assert_eq!(payload.len(), raw_len, "lossy codec: length mismatch");
    payload
}

/// [`Encoding::F32`]: coordinates as binary32.
pub struct F32Codec;

impl Codec for F32Codec {
    fn encoding(&self) -> Encoding {
        Encoding::F32
    }

    fn encode_body(&self, payload: &[u8], spans: &[CoordSpan], _dict: &[u8]) -> Vec<u8> {
        encode_with(payload, spans, f64::from(f32::MAX), |v| {
            (v as f32).to_le_bytes().to_vec()
        })
    }

    fn decode_body(&self, body: &[u8], raw_len: usize, _dict: &[u8]) -> Vec<u8> {
        decode_with(body, raw_len, 4, |b| {
            f64::from(f32::from_le_bytes(b.try_into().unwrap()))
        })
    }
}

/// [`Encoding::F16`]: coordinates as binary16.
pub struct F16Codec;

impl Codec for F16Codec {
    fn encoding(&self) -> Encoding {
        Encoding::F16
    }

    fn encode_body(&self, payload: &[u8], spans: &[CoordSpan], _dict: &[u8]) -> Vec<u8> {
        encode_with(payload, spans, f16::MAX.to_f64(), |v| {
            f16::from_f64(v).to_bits().to_le_bytes().to_vec()
        })
    }

    fn decode_body(&self, body: &[u8], raw_len: usize, _dict: &[u8]) -> Vec<u8> {
        decode_with(body, raw_len, 2, |b| {
            f16::from_bits(u16::from_le_bytes(b.try_into().unwrap())).to_f64()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(codec: &dyn Codec, values: &[f64]) -> Vec<f64> {
        let payload: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let spans = [CoordSpan {
            start: 0,
            rows: 1,
            dim: values.len(),
        }];
        let body = codec.encode_body(&payload, &spans, &[]);
        let back = codec.decode_body(&body, payload.len(), &[]);
        back.chunks(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    #[test]
    fn f32_error_within_declared_envelope() {
        let values = [0.0, 1.0, -1.0, std::f64::consts::PI, 1e-40, 1e39, -400.125];
        // 1e39 exceeds f32::MAX: whole span falls back to verbatim.
        let back = roundtrip(&F32Codec, &values);
        assert_eq!(back, values, "out-of-range span must be verbatim");
        let small = [0.0, 1.0000001, -123.456, 1e-30, 9.9e4];
        for (x, y) in small.iter().zip(roundtrip(&F32Codec, &small)) {
            assert!((x - y).abs() <= f32_declared_eps(*x), "{x} -> {y}");
        }
    }

    #[test]
    fn f16_error_within_declared_envelope() {
        let values = [0.0, 1.0, -1.0, 0.333, 401.7, -65504.0, 1e-9];
        for (x, y) in values.iter().zip(roundtrip(&F16Codec, &values)) {
            assert!((x - y).abs() <= f16_declared_eps(*x), "{x} -> {y}");
        }
        // A span with one huge value ships verbatim — outliers never
        // cost the clustered coordinates their precision, and never
        // round to infinity.
        let with_outlier = [1.0, 2.0, 9e4];
        assert_eq!(roundtrip(&F16Codec, &with_outlier), with_outlier);
    }

    #[test]
    fn specials_survive() {
        for codec in [&F32Codec as &dyn Codec, &F16Codec] {
            let values = [f64::INFINITY, f64::NEG_INFINITY, f64::NAN, 0.0, -0.0];
            let back = roundtrip(codec, &values);
            assert_eq!(back[0], f64::INFINITY);
            assert_eq!(back[1], f64::NEG_INFINITY);
            assert!(back[2].is_nan());
            assert_eq!(back[3].to_bits(), 0.0f64.to_bits());
            assert_eq!(back[4].to_bits(), (-0.0f64).to_bits());
        }
    }

    #[test]
    fn narrow_spans_shrink_bytes() {
        let values: Vec<f64> = (0..64).map(|i| i as f64 * 0.5).collect();
        let payload: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let spans = [CoordSpan {
            start: 0,
            rows: 16,
            dim: 4,
        }];
        let f32_body = F32Codec.encode_body(&payload, &spans, &[]);
        let f16_body = F16Codec.encode_body(&payload, &spans, &[]);
        assert!(f32_body.len() < payload.len() * 3 / 5, "{}", f32_body.len());
        assert!(f16_body.len() < payload.len() * 2 / 5, "{}", f16_body.len());
    }
}
