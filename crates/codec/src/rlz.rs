//! Reference-based (RLZ-style) lossless coding.
//!
//! The payload is parsed greedily into copy/literal phrases against a
//! reference dictionary the caller supplies — in the continuous
//! protocol, each site's previous sync summary, so round `r+1`'s
//! summary ships as a handful of copies plus the coordinates that
//! actually drifted. With an empty dictionary the mode degrades to one
//! literal phrase (a few bytes of overhead over raw).
//!
//! The body leads with an FNV-1a checksum of the dictionary. A decoder
//! holding any other reference — the classic desync failure of
//! reference coding — panics immediately instead of silently
//! reconstructing corrupt coordinates.

use crate::{push_varint, read_varint, Codec, CoordSpan, Encoding};
use std::collections::HashMap;

/// Minimum copy length: shorter matches cost more to describe than to
/// ship literally (anchor width; also the hash width).
const MIN_MATCH: usize = 8;

/// Cap on remembered positions per anchor hash — keeps pathological
/// dictionaries (one repeated byte) linear.
const MAX_CHAIN: usize = 8;

/// 64-bit FNV-1a over the dictionary bytes.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn anchor(data: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(data[at..at + MIN_MATCH].try_into().unwrap())
}

fn common_prefix(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

/// Phrase tokens: `varint head` where the low bit selects the kind and
/// the rest is the length. Copy: `head = len << 1 | 1`, then
/// `varint offset` into the dictionary. Literal: `head = len << 1`,
/// then `len` raw bytes.
fn push_literal(out: &mut Vec<u8>, lit: &[u8]) {
    if lit.is_empty() {
        return;
    }
    push_varint(out, (lit.len() as u64) << 1);
    out.extend_from_slice(lit);
}

/// [`Encoding::Rlz`].
pub struct RlzCodec;

impl Codec for RlzCodec {
    fn encoding(&self) -> Encoding {
        Encoding::Rlz
    }

    fn encode_body(&self, payload: &[u8], _spans: &[CoordSpan], dict: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(payload.len() / 4 + 16);
        out.extend_from_slice(&fnv1a(dict).to_le_bytes());
        // Index the dictionary by 8-byte anchors.
        let mut index: HashMap<u64, Vec<usize>> = HashMap::new();
        if dict.len() >= MIN_MATCH {
            for at in 0..=dict.len() - MIN_MATCH {
                let slots = index.entry(anchor(dict, at)).or_default();
                if slots.len() < MAX_CHAIN {
                    slots.push(at);
                }
            }
        }
        let mut lit_start = 0usize;
        let mut i = 0usize;
        while i + MIN_MATCH <= payload.len() {
            let best = index
                .get(&anchor(payload, i))
                .into_iter()
                .flatten()
                .map(|&at| (common_prefix(&payload[i..], &dict[at..]), at))
                .max();
            match best {
                Some((len, at)) if len >= MIN_MATCH => {
                    push_literal(&mut out, &payload[lit_start..i]);
                    push_varint(&mut out, ((len as u64) << 1) | 1);
                    push_varint(&mut out, at as u64);
                    i += len;
                    lit_start = i;
                }
                _ => i += 1,
            }
        }
        push_literal(&mut out, &payload[lit_start..]);
        out
    }

    fn decode_body(&self, body: &[u8], raw_len: usize, dict: &[u8]) -> Vec<u8> {
        assert!(body.len() >= 8, "rlz codec: truncated body");
        let want = u64::from_le_bytes(body[..8].try_into().unwrap());
        assert_eq!(
            want,
            fnv1a(dict),
            "RLZ reference mismatch: this frame was encoded against a \
             different dictionary (checksum {want:#018x}); refusing to \
             decode rather than silently corrupt the payload"
        );
        let mut out = Vec::with_capacity(raw_len);
        let mut pos = 8usize;
        while pos < body.len() {
            let head = read_varint(body, &mut pos);
            let len = (head >> 1) as usize;
            if head & 1 == 1 {
                let at = read_varint(body, &mut pos) as usize;
                let end = at.checked_add(len).expect("rlz codec: copy overflow");
                assert!(
                    end <= dict.len(),
                    "rlz codec: copy [{at}, {end}) exceeds the {}-byte dictionary",
                    dict.len()
                );
                out.extend_from_slice(&dict[at..end]);
            } else {
                out.extend_from_slice(&body[pos..pos + len]);
                pos += len;
            }
        }
        assert_eq!(out.len(), raw_len, "rlz codec: length mismatch");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(payload: &[u8], dict: &[u8]) -> usize {
        let body = RlzCodec.encode_body(payload, &[], dict);
        assert_eq!(RlzCodec.decode_body(&body, payload.len(), dict), payload);
        body.len()
    }

    #[test]
    fn empty_dictionary_degrades_to_literals() {
        let payload: Vec<u8> = (0u8..=200).collect();
        let n = roundtrip(&payload, &[]);
        assert!(n <= payload.len() + 12, "{n}");
        roundtrip(&[], &[]);
    }

    #[test]
    fn identical_payload_collapses_to_one_copy() {
        let dict: Vec<u8> = (0..400).map(|i| (i * 7 % 251) as u8).collect();
        let n = roundtrip(&dict, &dict);
        assert!(n <= 8 + 6, "identical payload should be one copy: {n}");
    }

    #[test]
    fn drifted_payload_mixes_copies_and_literals() {
        let dict: Vec<u8> = (0..512).map(|i| (i * 13 % 241) as u8).collect();
        let mut payload = dict.clone();
        // Perturb a few scattered bytes — the drifted-summary shape.
        for &at in &[40usize, 200, 333] {
            payload[at] ^= 0xff;
        }
        let n = roundtrip(&payload, &dict);
        assert!(n < payload.len() / 4, "drifted payload barely changed: {n}");
    }

    #[test]
    #[should_panic(expected = "RLZ reference mismatch")]
    fn wrong_reference_fails_loudly() {
        let dict: Vec<u8> = (0..256).map(|i| i as u8).collect();
        let body = RlzCodec.encode_body(&dict, &[], &dict);
        let mut wrong = dict.clone();
        wrong[10] = 99;
        RlzCodec.decode_body(&body, dict.len(), &wrong);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn out_of_range_copy_is_rejected() {
        let dict = [1u8, 2, 3];
        let mut body = fnv1a(&dict).to_le_bytes().to_vec();
        push_varint(&mut body, (100u64 << 1) | 1); // copy of len 100
        push_varint(&mut body, 0);
        RlzCodec.decode_body(&body, 100, &dict);
    }
}
