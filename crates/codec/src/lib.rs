//! Pluggable wire codecs for protocol payloads — the bicriteria
//! compression layer between messages and the transport.
//!
//! The source paper's entire objective is communication cost, and every
//! message in this workspace is charged its real serialized length. This
//! crate adds the other half of the trade: *shrink* those bytes, either
//! losslessly or against a declared per-coordinate error envelope, and
//! let experiments sweep the resulting bytes ⇄ quality frontier
//! (Farruggia et al., *Bicriteria data compression*; Gagie,
//! *RLZ-to-LZ77*, for the reference-coded mode).
//!
//! ## The five modes
//!
//! | [`Encoding`] | kind     | guarantee |
//! |--------------|----------|-----------|
//! | `Raw`        | identity | bit-identical bytes — no frame header at all |
//! | `F32`        | lossy    | per coordinate `x`: error ≤ [`f32_declared_eps`]`(x)` |
//! | `F16`        | lossy    | per coordinate `x`: error ≤ [`f16_declared_eps`]`(x)` |
//! | `Delta`      | lossless | bit-identical round trip (sorted delta + zig-zag varints) |
//! | `Rlz`        | lossless | bit-identical round trip; decoding against the wrong reference fails loudly |
//!
//! ## How it plugs in
//!
//! Messages serialize through `dpc_metric`'s [`WireWriter`], which
//! records a [`CoordSpan`] for every run of point coordinates it writes.
//! [`frame`] consumes the writer: under `Raw` it returns the exact bytes
//! `finish()` would have (keeping pinned goldens byte-identical), under
//! any other mode it emits a self-describing frame
//!
//! ```text
//! varint version (= 1) · varint encoding tag · varint raw_len · body
//! ```
//!
//! whose body only transforms the recorded coordinate spans — varints,
//! weights, costs and every other scalar survive bit-exactly under
//! *every* mode. [`unframe`] inverts it; [`peek_raw_len`] lets the
//! protocol driver charge both compressed (wire) and raw byte totals
//! without decoding.
//!
//! The `Rlz` mode encodes the whole payload as copy/literal phrases
//! against a caller-supplied reference dictionary (for the continuous
//! protocol: the same site's previous sync summary). The frame carries a
//! checksum of the reference, so a decoder holding a different
//! dictionary panics instead of silently corrupting coordinates.

pub mod delta;
pub mod lossy;
pub mod rlz;

use bytes::Bytes;
pub use dpc_metric::encode::CoordSpan;
use dpc_metric::encode::WireWriter;
pub use lossy::{f16_declared_eps, f32_declared_eps};

/// Frame format version emitted by [`frame`].
pub const FRAME_VERSION: u64 = 1;

/// The wire encoding of protocol payloads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Encoding {
    /// Today's bytes, untouched: no frame header, bit-identical to the
    /// pre-codec wire format.
    #[default]
    Raw,
    /// Coordinates narrowed to IEEE-754 binary32 (4 bytes each), lossy
    /// within [`f32_declared_eps`] per coordinate.
    F32,
    /// Coordinates narrowed to IEEE-754 binary16 (2 bytes each), lossy
    /// within [`f16_declared_eps`] per coordinate.
    F16,
    /// Lossless: coordinate rows sorted, transposed, and shipped as
    /// zig-zag varint residuals of an order-preserving integer mapping.
    Delta,
    /// Lossless reference coding: the payload becomes copy/literal
    /// phrases against a dictionary (e.g. the previous sync's summary).
    Rlz,
}

impl Encoding {
    /// All encodings, `Raw` first.
    pub const ALL: [Encoding; 5] = [
        Encoding::Raw,
        Encoding::F32,
        Encoding::F16,
        Encoding::Delta,
        Encoding::Rlz,
    ];

    /// Stable lower-case name used by the CLI, artifacts and sweep
    /// tables.
    pub fn name(self) -> &'static str {
        match self {
            Encoding::Raw => "raw",
            Encoding::F32 => "f32",
            Encoding::F16 => "f16",
            Encoding::Delta => "delta",
            Encoding::Rlz => "rlz",
        }
    }

    /// Inverse of [`Self::name`].
    pub fn parse(s: &str) -> Option<Encoding> {
        Encoding::ALL.into_iter().find(|e| e.name() == s)
    }

    /// Frame tag of this encoding (`Raw` has none: it is never framed).
    fn tag(self) -> u64 {
        match self {
            Encoding::Raw => 0,
            Encoding::F32 => 1,
            Encoding::F16 => 2,
            Encoding::Delta => 3,
            Encoding::Rlz => 4,
        }
    }

    fn from_tag(tag: u64) -> Option<Encoding> {
        Encoding::ALL.into_iter().find(|e| e.tag() == tag)
    }

    /// Whether decoded payloads are bit-identical to the originals.
    pub fn is_lossless(self) -> bool {
        !matches!(self, Encoding::F32 | Encoding::F16)
    }

    /// The declared per-coordinate error envelope for value `x`:
    /// `None` for lossless modes, otherwise the bound the decoded
    /// coordinate is guaranteed to satisfy.
    pub fn declared_eps(self, x: f64) -> Option<f64> {
        match self {
            Encoding::F32 => Some(f32_declared_eps(x)),
            Encoding::F16 => Some(f16_declared_eps(x)),
            _ => None,
        }
    }

    /// The codec implementing this mode.
    pub fn codec(self) -> &'static dyn Codec {
        match self {
            Encoding::Raw => &RawCodec,
            Encoding::F32 => &lossy::F32Codec,
            Encoding::F16 => &lossy::F16Codec,
            Encoding::Delta => &delta::DeltaCodec,
            Encoding::Rlz => &rlz::RlzCodec,
        }
    }
}

impl std::fmt::Display for Encoding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One payload transform: raw bytes plus their coordinate spans in,
/// frame body out, and back.
///
/// Implementations must be pure functions of their inputs — the same
/// `(payload, spans, dict)` always produces the same body, which is what
/// keeps byte accounting deterministic across transports.
pub trait Codec: Send + Sync {
    /// The mode this codec implements.
    fn encoding(&self) -> Encoding;

    /// Transforms a raw payload into a frame body. `spans` locate the
    /// coordinate doubles inside `payload`; `dict` is the reference
    /// dictionary (ignored by every mode except `Rlz`).
    fn encode_body(&self, payload: &[u8], spans: &[CoordSpan], dict: &[u8]) -> Vec<u8>;

    /// Inverts [`Self::encode_body`], reconstructing exactly `raw_len`
    /// payload bytes.
    ///
    /// # Panics
    /// Panics on a malformed body, or (for `Rlz`) on a reference
    /// dictionary that does not match the one the body was encoded
    /// against — loud failure, never silent corruption.
    fn decode_body(&self, body: &[u8], raw_len: usize, dict: &[u8]) -> Vec<u8>;
}

/// The identity codec backing [`Encoding::Raw`].
///
/// Never reached through [`frame`]/[`unframe`] (raw payloads skip the
/// frame entirely); exists so every mode answers to the [`Codec`] trait.
pub struct RawCodec;

impl Codec for RawCodec {
    fn encoding(&self) -> Encoding {
        Encoding::Raw
    }

    fn encode_body(&self, payload: &[u8], _spans: &[CoordSpan], _dict: &[u8]) -> Vec<u8> {
        payload.to_vec()
    }

    fn decode_body(&self, body: &[u8], raw_len: usize, _dict: &[u8]) -> Vec<u8> {
        assert_eq!(body.len(), raw_len, "raw body length mismatch");
        body.to_vec()
    }
}

/// Finishes a [`WireWriter`] under the given encoding.
///
/// `Raw` returns exactly the bytes [`WireWriter::finish`] would — no
/// header, bit-identical to the pre-codec wire format. Every other mode
/// returns a self-describing frame; `dict` is the `Rlz` reference
/// dictionary (pass `&[]` when there is none).
pub fn frame(encoding: Encoding, writer: WireWriter, dict: &[u8]) -> Bytes {
    if encoding == Encoding::Raw {
        return writer.finish();
    }
    let (payload, spans) = writer.finish_with_spans();
    let body = encoding.codec().encode_body(&payload, &spans, dict);
    let mut out = Vec::with_capacity(body.len() + 8);
    push_varint(&mut out, FRAME_VERSION);
    push_varint(&mut out, encoding.tag());
    push_varint(&mut out, payload.len() as u64);
    out.extend_from_slice(&body);
    Bytes::from(out)
}

/// Inverts [`frame`], returning the raw payload bytes.
///
/// # Panics
/// Panics when the frame's version or encoding tag disagrees with
/// `encoding` (the caller's configuration is authoritative — a mismatch
/// is a protocol bug, not a recoverable condition), and propagates the
/// codec's own decode panics (malformed body, `Rlz` reference
/// mismatch).
pub fn unframe(encoding: Encoding, buf: Bytes, dict: &[u8]) -> Bytes {
    if encoding == Encoding::Raw {
        return buf;
    }
    let mut pos = 0usize;
    let version = read_varint(&buf, &mut pos);
    assert_eq!(version, FRAME_VERSION, "unsupported codec frame version");
    let tag = read_varint(&buf, &mut pos);
    let found = Encoding::from_tag(tag).expect("unknown codec frame tag");
    assert_eq!(
        found, encoding,
        "codec frame encodes {found} but the protocol is configured for {encoding}"
    );
    let raw_len = read_varint(&buf, &mut pos) as usize;
    let raw = encoding.codec().decode_body(&buf[pos..], raw_len, dict);
    debug_assert_eq!(raw.len(), raw_len);
    Bytes::from(raw)
}

/// Reads the raw (pre-compression) payload length from a frame header
/// without decoding the body — how the protocol driver charges both
/// byte totals per round.
///
/// # Panics
/// Panics when `buf` does not start with a valid frame header.
pub fn peek_raw_len(buf: &[u8]) -> usize {
    let mut pos = 0usize;
    let version = read_varint(buf, &mut pos);
    assert_eq!(
        version, FRAME_VERSION,
        "not a codec frame (is the protocol running Raw?)"
    );
    let tag = read_varint(buf, &mut pos);
    Encoding::from_tag(tag).expect("unknown codec frame tag");
    read_varint(buf, &mut pos) as usize
}

/// Appends a LEB128 varint (the same format `WireWriter::put_varint`
/// emits).
pub(crate) fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint at `*pos`, advancing it.
pub(crate) fn read_varint(buf: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let byte = buf[*pos];
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
        assert!(shift < 64, "varint too long");
    }
}

/// Shared body skeleton for the span-structured codecs (`F32`, `F16`,
/// `Delta`): the non-coordinate bytes of the payload verbatim, plus the
/// span table, so decoding needs no knowledge of any message's layout.
pub(crate) mod skeleton {
    use super::{push_varint, read_varint, CoordSpan};

    /// Writes the gap/tail bytes and the span table.
    pub(crate) fn write(out: &mut Vec<u8>, payload: &[u8], spans: &[CoordSpan]) {
        push_varint(out, spans.len() as u64);
        let mut cursor = 0usize;
        for s in spans {
            push_varint(out, (s.start - cursor) as u64);
            out.extend_from_slice(&payload[cursor..s.start]);
            push_varint(out, s.rows as u64);
            push_varint(out, s.dim as u64);
            cursor = s.start + s.byte_len();
        }
        push_varint(out, (payload.len() - cursor) as u64);
        out.extend_from_slice(&payload[cursor..]);
    }

    /// Reads the skeleton back: returns the reconstructed payload with
    /// span regions zero-filled (for the mode payload to overwrite) and
    /// the span table, advancing `pos` past the skeleton.
    pub(crate) fn read(body: &[u8], pos: &mut usize) -> (Vec<u8>, Vec<CoordSpan>) {
        let n_spans = read_varint(body, pos) as usize;
        let mut payload = Vec::new();
        let mut spans = Vec::with_capacity(n_spans);
        for _ in 0..n_spans {
            let gap = read_varint(body, pos) as usize;
            payload.extend_from_slice(&body[*pos..*pos + gap]);
            *pos += gap;
            let rows = read_varint(body, pos) as usize;
            let dim = read_varint(body, pos) as usize;
            let span = CoordSpan {
                start: payload.len(),
                rows,
                dim,
            };
            payload.resize(payload.len() + span.byte_len(), 0);
            spans.push(span);
        }
        let tail = read_varint(body, pos) as usize;
        payload.extend_from_slice(&body[*pos..*pos + tail]);
        *pos += tail;
        (payload, spans)
    }

    /// Iterates the doubles of one span inside a payload.
    pub(crate) fn span_values(payload: &[u8], span: &CoordSpan) -> Vec<f64> {
        (0..span.values())
            .map(|i| {
                let at = span.start + i * 8;
                f64::from_le_bytes(payload[at..at + 8].try_into().unwrap())
            })
            .collect()
    }

    /// Writes doubles back into one span of a payload.
    pub(crate) fn write_span_values(payload: &mut [u8], span: &CoordSpan, values: &[f64]) {
        debug_assert_eq!(values.len(), span.values());
        for (i, v) in values.iter().enumerate() {
            let at = span.start + i * 8;
            payload[at..at + 8].copy_from_slice(&v.to_le_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_writer() -> WireWriter {
        let mut w = WireWriter::new();
        w.put_varint(3);
        w.put_point(&[1.5, -2.25]);
        w.put_f64(0.125); // weight: must stay exact under every mode
        w.put_point(&[3.0, 4.0]);
        w.put_point(&[5.0, 6.0]);
        w.put_varint(999);
        w
    }

    #[test]
    fn raw_frame_is_the_identity() {
        let plain = sample_writer().finish();
        let framed = frame(Encoding::Raw, sample_writer(), &[]);
        assert_eq!(plain, framed);
        assert_eq!(unframe(Encoding::Raw, framed.clone(), &[]), plain);
    }

    #[test]
    fn every_mode_round_trips_the_sample() {
        let plain = sample_writer().finish();
        for enc in Encoding::ALL {
            let framed = frame(enc, sample_writer(), &[]);
            let back = unframe(enc, framed.clone(), &[]);
            assert_eq!(back.len(), plain.len(), "{enc}");
            if enc.is_lossless() {
                assert_eq!(back, plain, "{enc}");
            }
            if enc != Encoding::Raw {
                assert_eq!(peek_raw_len(&framed), plain.len(), "{enc}");
            }
        }
    }

    #[test]
    fn lossy_modes_respect_declared_eps_on_the_sample() {
        let plain = sample_writer().finish();
        for enc in [Encoding::F32, Encoding::F16] {
            let back = unframe(enc, frame(enc, sample_writer(), &[]), &[]);
            assert_eq!(back.len(), plain.len(), "{enc}");
            // Coordinates: positions after the 1-byte varint.
            let coords = [1.5, -2.25, 3.0, 4.0, 5.0, 6.0];
            let mut at = 1;
            for (idx, &x) in coords.iter().enumerate() {
                if idx == 2 {
                    at += 8; // skip the exact weight
                }
                let got = f64::from_le_bytes(back[at..at + 8].try_into().unwrap());
                assert!(
                    (got - x).abs() <= enc.declared_eps(x).unwrap(),
                    "{enc}: {x} -> {got}"
                );
                at += 8;
            }
            // The weight survives bit-exactly.
            let w = f64::from_le_bytes(back[17..25].try_into().unwrap());
            assert_eq!(w, 0.125, "{enc}");
        }
    }

    #[test]
    fn names_parse_back() {
        for enc in Encoding::ALL {
            assert_eq!(Encoding::parse(enc.name()), Some(enc));
            assert_eq!(Encoding::from_tag(enc.tag()), Some(enc));
        }
        assert_eq!(Encoding::parse("zstd"), None);
    }

    #[test]
    #[should_panic(expected = "configured for")]
    fn unframe_rejects_mode_mismatch() {
        let framed = frame(Encoding::Delta, sample_writer(), &[]);
        unframe(Encoding::F32, framed, &[]);
    }

    #[test]
    fn empty_payload_frames_and_unframes() {
        for enc in Encoding::ALL {
            let framed = frame(enc, WireWriter::new(), &[]);
            let back = unframe(enc, framed, &[]);
            assert!(back.is_empty(), "{enc}");
        }
    }
}
