//! Lossless delta coding of coordinate blocks.
//!
//! Coordinate spans of the same width are pooled into one virtual
//! matrix (rows = points, columns = dimensions), the rows are sorted by
//! an order-preserving integer image of their coordinates, and each
//! column ships as zig-zag varint residuals between consecutive sorted
//! rows. Clustered workloads — the paper's whole setting — have many
//! near-identical points, so sorted neighbours agree in their high bits
//! and the residuals collapse to short varints. A permutation (one
//! varint per row) restores the original order, keeping the mode
//! bit-exact, NaN included.

use crate::{push_varint, read_varint, skeleton, Codec, CoordSpan, Encoding};

/// Order-preserving bijection `f64 bits → u64`: negative values map
/// below positives and the usual `<` order on finite doubles becomes
/// unsigned integer order.
fn f64_to_ord(v: f64) -> u64 {
    let bits = v.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits ^ (1 << 63)
    }
}

/// Inverse of [`f64_to_ord`].
fn ord_to_f64(m: u64) -> f64 {
    let bits = if m >> 63 == 1 { m ^ (1 << 63) } else { !m };
    f64::from_bits(bits)
}

fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Spans pooled by width, each group listing `(span index, row count)`
/// in first-occurrence order.
fn group_by_dim(spans: &[CoordSpan]) -> Vec<(usize, Vec<usize>)> {
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        match groups.iter_mut().find(|(dim, _)| *dim == s.dim) {
            Some((_, members)) => members.push(i),
            None => groups.push((s.dim, vec![i])),
        }
    }
    groups
}

/// [`Encoding::Delta`].
pub struct DeltaCodec;

impl Codec for DeltaCodec {
    fn encoding(&self) -> Encoding {
        Encoding::Delta
    }

    fn encode_body(&self, payload: &[u8], spans: &[CoordSpan], _dict: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(payload.len() / 2 + 16);
        skeleton::write(&mut out, payload, spans);
        for (dim, members) in group_by_dim(spans) {
            // Pool the group's rows in span order.
            let mut rows: Vec<Vec<u64>> = Vec::new();
            for &m in &members {
                let values = skeleton::span_values(payload, &spans[m]);
                for r in 0..spans[m].rows {
                    rows.push(
                        values[r * dim..(r + 1) * dim]
                            .iter()
                            .map(|&v| f64_to_ord(v))
                            .collect(),
                    );
                }
            }
            let mut order: Vec<usize> = (0..rows.len()).collect();
            order.sort_by(|&a, &b| rows[a].cmp(&rows[b]));
            // Permutation: the original row index of each sorted row.
            for &o in &order {
                push_varint(&mut out, o as u64);
            }
            // Column-major residuals over the sorted rows. (The range
            // loop is the clearest shape here: rows are visited in
            // `order`, not linearly, so an iterator over `rows` would
            // invert the real access pattern.)
            #[allow(clippy::needless_range_loop)]
            for col in 0..dim {
                let mut prev = 0u64;
                for &o in &order {
                    let cur = rows[o][col];
                    push_varint(&mut out, zigzag(cur.wrapping_sub(prev) as i64));
                    prev = cur;
                }
            }
        }
        out
    }

    fn decode_body(&self, body: &[u8], raw_len: usize, _dict: &[u8]) -> Vec<u8> {
        let mut pos = 0usize;
        let (mut payload, spans) = skeleton::read(body, &mut pos);
        for (dim, members) in group_by_dim(&spans) {
            let total_rows: usize = members.iter().map(|&m| spans[m].rows).sum();
            let order: Vec<usize> = (0..total_rows)
                .map(|_| read_varint(body, &mut pos) as usize)
                .collect();
            let mut rows = vec![vec![0u64; dim]; total_rows];
            // Mirrors the encoder's column-major walk (see encode_body).
            #[allow(clippy::needless_range_loop)]
            for col in 0..dim {
                let mut prev = 0u64;
                for &o in &order {
                    prev = prev.wrapping_add(unzigzag(read_varint(body, &mut pos)) as u64);
                    rows[o][col] = prev;
                }
            }
            // Scatter the pooled rows back into the group's spans.
            let mut next = 0usize;
            for &m in &members {
                let span = &spans[m];
                let values: Vec<f64> = rows[next..next + span.rows]
                    .iter()
                    .flat_map(|r| r.iter().map(|&m| ord_to_f64(m)))
                    .collect();
                next += span.rows;
                skeleton::write_span_values(&mut payload, span, &values);
            }
        }
        assert_eq!(pos, body.len(), "delta codec: trailing bytes in body");
        assert_eq!(payload.len(), raw_len, "delta codec: length mismatch");
        payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ord_mapping_is_monotone_and_invertible() {
        let vals = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -0.0,
            0.0,
            1e-300,
            3.25,
            f64::INFINITY,
        ];
        for w in vals.windows(2) {
            assert!(f64_to_ord(w[0]) < f64_to_ord(w[1]), "{:?}", w);
        }
        for v in vals.iter().chain(&[f64::NAN]) {
            assert_eq!(ord_to_f64(f64_to_ord(*v)).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn zigzag_round_trips() {
        for d in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(d)), d);
        }
    }

    fn roundtrip(values: &[f64], spans: &[CoordSpan]) {
        let payload: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let body = DeltaCodec.encode_body(&payload, spans, &[]);
        let back = DeltaCodec.decode_body(&body, payload.len(), &[]);
        assert_eq!(back, payload);
    }

    #[test]
    fn bit_exact_including_nan_and_interleaved_spans() {
        let values = [
            1.0,
            2.0,
            f64::NAN,
            -0.0,
            1.0000001,
            2.0000001,
            1e300,
            -1e300,
        ];
        // Two separate 2-wide spans with a gap byte between them would
        // need a real payload; here spans tile the buffer: two spans of
        // dim 2 and one of dim 4 exercise the grouping.
        roundtrip(
            &values,
            &[
                CoordSpan {
                    start: 0,
                    rows: 2,
                    dim: 2,
                },
                CoordSpan {
                    start: 32,
                    rows: 1,
                    dim: 4,
                },
            ],
        );
        // Per-point spans (the interleaved point+weight pattern).
        roundtrip(
            &values,
            &[
                CoordSpan {
                    start: 0,
                    rows: 1,
                    dim: 2,
                },
                CoordSpan {
                    start: 16,
                    rows: 1,
                    dim: 2,
                },
                CoordSpan {
                    start: 32,
                    rows: 1,
                    dim: 2,
                },
                CoordSpan {
                    start: 48,
                    rows: 1,
                    dim: 2,
                },
            ],
        );
    }

    #[test]
    fn clustered_rows_compress() {
        // 64 near-identical 4-d points: sorted residuals are tiny.
        let mut values = Vec::new();
        for i in 0..64 {
            for d in 0..4 {
                values.push(100.0 + (i % 8) as f64 + d as f64 * 0.5);
            }
        }
        let payload: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let spans = [CoordSpan {
            start: 0,
            rows: 64,
            dim: 4,
        }];
        let body = DeltaCodec.encode_body(&payload, &spans, &[]);
        assert!(
            body.len() * 2 < payload.len(),
            "delta did not reach 2x on clustered rows: {} vs {}",
            body.len(),
            payload.len()
        );
        assert_eq!(DeltaCodec.decode_body(&body, payload.len(), &[]), payload);
    }
}
