//! Properties of the wire codec subsystem, over arbitrary messages
//! built from the same ops real protocol messages use:
//!
//! * lossless modes (`raw`, `delta`, `rlz`) round-trip **bit-identically**;
//! * lossy modes (`f32`, `f16`) keep every coordinate within its
//!   declared error envelope and leave every non-coordinate byte —
//!   varints, weights, costs — bit-exact;
//! * `rlz` decoded against the wrong reference dictionary fails loudly
//!   instead of silently corrupting the payload;
//! * `peek_raw_len` reads the true pre-compression length off every
//!   non-raw frame without decoding it.

use dpc_codec::rlz::fnv1a;
use dpc_codec::{frame, peek_raw_len, unframe, Encoding};
use dpc_metric::encode::{varint_bytes, WireWriter};
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One serialization op — the alphabet protocol messages are composed
/// from. `Scalar` is a non-coordinate double (a weight or a cost) that
/// must survive bit-exactly under *every* mode; `Point` and `Slice`
/// emit coordinate spans the codecs are allowed to transform.
#[derive(Clone, Debug)]
enum Op {
    Varint(u64),
    Scalar(f64),
    Point(Vec<f64>),
    Slice(Vec<f64>),
}

/// Coordinate values: clustered magnitudes, unit-scale values, signed
/// zeros, subnormal-adjacent values, and values beyond the f32/f16
/// finite ranges (which must trigger the verbatim span fallback).
fn coord() -> impl Strategy<Value = f64> {
    (0u64..12, -1.0f64..1.0).prop_map(|(sel, u)| match sel {
        0..=4 => u * 1e6,
        5..=7 => u,
        8 => 0.0,
        9 => -0.0,
        10 => u * 1e-30,
        _ => u * 1e40,
    })
}

fn op() -> impl Strategy<Value = Op> {
    (
        0u64..4,
        any::<u64>(),
        coord(),
        prop::collection::vec(coord(), 1..6),
        prop::collection::vec(coord(), 0..12),
    )
        .prop_map(|(kind, v, scalar, point, slice)| match kind {
            0 => Op::Varint(v),
            1 => Op::Scalar(scalar),
            2 => Op::Point(point),
            _ => Op::Slice(slice),
        })
}

fn message() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(op(), 0..24)
}

/// Replays the ops into a fresh writer, also returning the byte offset
/// and value of every coordinate double and the offset of every exact
/// (non-coordinate) double.
fn build(ops: &[Op]) -> (WireWriter, Vec<(usize, f64)>, Vec<usize>) {
    let mut w = WireWriter::new();
    let mut coords = Vec::new();
    let mut exact = Vec::new();
    for op in ops {
        match op {
            Op::Varint(v) => w.put_varint(*v),
            Op::Scalar(v) => {
                exact.push(w.len());
                w.put_f64(*v);
            }
            Op::Point(p) => {
                for (i, &c) in p.iter().enumerate() {
                    coords.push((w.len() + i * 8, c));
                }
                w.put_point(p);
            }
            Op::Slice(vs) => {
                let base = w.len() + varint_bytes(vs.len() as u64);
                for (i, &c) in vs.iter().enumerate() {
                    coords.push((base + i * 8, c));
                }
                w.put_f64_slice(vs);
            }
        }
    }
    (w, coords, exact)
}

fn read_f64(buf: &[u8], at: usize) -> f64 {
    f64::from_le_bytes(buf[at..at + 8].try_into().unwrap())
}

proptest! {
    /// Lossless modes reconstruct the exact raw bytes, and the frame
    /// header reports the exact raw length without decoding.
    #[test]
    fn lossless_modes_round_trip_bit_identically(
        ops in message(),
        dict in prop::collection::vec(0u8..=255, 0..256),
    ) {
        let raw = build(&ops).0.finish();
        for enc in [Encoding::Raw, Encoding::Delta, Encoding::Rlz] {
            let framed = frame(enc, build(&ops).0, &dict);
            if enc != Encoding::Raw {
                prop_assert_eq!(peek_raw_len(&framed), raw.len(), "{}", enc);
            }
            let back = unframe(enc, framed, &dict);
            prop_assert_eq!(&back, &raw, "{}", enc);
        }
    }

    /// Lossy modes keep every coordinate within the declared envelope
    /// and every non-coordinate byte bit-exact.
    #[test]
    fn lossy_modes_respect_the_declared_envelope(ops in message()) {
        let (w, coords, exact) = build(&ops);
        let raw = w.finish();
        for enc in [Encoding::F32, Encoding::F16] {
            let back = unframe(enc, frame(enc, build(&ops).0, &[]), &[]);
            prop_assert_eq!(back.len(), raw.len(), "{}", enc);
            // Every coordinate honors the per-value error bound.
            for &(at, x) in &coords {
                let got = read_f64(&back, at);
                let eps = enc.declared_eps(x).expect("lossy mode declares eps");
                prop_assert!(
                    (got - x).abs() <= eps,
                    "{}: coordinate {} decoded to {} (eps {})", enc, x, got, eps
                );
            }
            // Exact doubles survive bit-for-bit.
            for &at in &exact {
                prop_assert_eq!(
                    read_f64(&back, at).to_bits(),
                    read_f64(&raw, at).to_bits(),
                    "{}: non-coordinate double must be exact", enc
                );
            }
            // And so does everything outside the coordinate spans:
            // blank the coordinate windows on both sides and compare.
            let mut raw_rest = raw.to_vec();
            let mut back_rest = back.to_vec();
            for &(at, _) in &coords {
                raw_rest[at..at + 8].fill(0);
                back_rest[at..at + 8].fill(0);
            }
            prop_assert_eq!(raw_rest, back_rest, "{}", enc);
        }
    }

    /// RLZ against a perturbed dictionary panics instead of decoding;
    /// the matching dictionary still round-trips the same frame.
    #[test]
    fn rlz_wrong_reference_fails_loudly(
        ops in message(),
        dict in prop::collection::vec(0u8..=255, 1..256),
        at in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let framed = frame(Encoding::Rlz, build(&ops).0, &dict);
        let mut wrong = dict.clone();
        wrong[at % dict.len()] ^= flip;
        // The checksum is what detects the desync; skip the (never yet
        // observed) case of an FNV collision between the two references.
        if fnv1a(&wrong) != fnv1a(&dict) {
            let framed2 = framed.clone();
            let outcome = catch_unwind(AssertUnwindSafe(move || {
                unframe(Encoding::Rlz, framed2, &wrong)
            }));
            prop_assert!(outcome.is_err(), "wrong reference must not decode");
        }
        let raw = build(&ops).0.finish();
        prop_assert_eq!(unframe(Encoding::Rlz, framed, &dict), raw);
    }
}
