//! Offline stand-in for the `half` crate (f16 conversion subset).
//!
//! The build environment has no registry access, so this vendored crate
//! provides exactly the surface `dpc_codec` uses: the [`f16`] storage
//! type with `from_f64` / `to_f64` / `from_bits` / `to_bits` and the
//! IEEE-754 binary16 constants. Conversions round to nearest, ties to
//! even, and handle subnormals, infinities and NaN — the same results
//! as the real crate's software path. Swap this directory for the real
//! crate when a registry is available; no call sites need to change.

/// A 16-bit IEEE-754 binary16 floating-point number, stored as its bit
/// pattern.
#[allow(non_camel_case_types)]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct f16(u16);

impl f16 {
    /// Largest finite binary16 value (65504).
    pub const MAX: f16 = f16(0x7bff);
    /// Smallest positive subnormal binary16 value (2⁻²⁴).
    pub const MIN_POSITIVE_SUBNORMAL: f16 = f16(0x0001);

    /// Reinterprets a raw bit pattern as a binary16 value.
    pub const fn from_bits(bits: u16) -> f16 {
        f16(bits)
    }

    /// The raw bit pattern.
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32`, rounding to nearest (ties to even).
    pub fn from_f32(v: f32) -> f16 {
        let bits = v.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xff) as i32;
        let frac = bits & 0x7f_ffff;
        if exp == 0xff {
            // Infinity or NaN; keep NaN payloads non-zero.
            let payload = if frac == 0 {
                0
            } else {
                0x200 | (frac >> 13) as u16
            };
            return f16(sign | 0x7c00 | payload);
        }
        // Unbiased exponent of the f32 value.
        let e = exp - 127;
        if e > 15 {
            // Overflows binary16: round to infinity.
            return f16(sign | 0x7c00);
        }
        if e < -25 {
            // Below half the smallest subnormal: rounds to zero.
            return f16(sign);
        }
        // Significand with the implicit leading one (24 bits), except for
        // f32 subnormals, which are far below the binary16 subnormal
        // range and were caught above.
        let sig = 0x80_0000 | frac;
        // Shift so the result keeps 11 significant bits (10 stored).
        // Normal results shift by 13; subnormal results shift more.
        let shift = if e < -14 { 13 + (-14 - e) } else { 13 } as u32;
        let halfway = 1u32 << (shift - 1);
        let rem = sig & ((1 << shift) - 1);
        let mut out = (sig >> shift) as u16;
        if rem > halfway || (rem == halfway && out & 1 == 1) {
            out += 1; // may carry into the exponent, which is correct
        }
        if e >= -14 {
            // Re-bias the exponent; `out` still contains the implicit bit
            // at position 10, so add the exponent field around it.
            let exp16 = (e + 15) as u16;
            f16(sign | ((exp16 - 1) << 10).wrapping_add(out))
        } else {
            f16(sign | out)
        }
    }

    /// Converts from `f64` by way of `f32`.
    ///
    /// Double rounding (f64 → f32 → f16) can differ from a single
    /// rounding by at most one ulp of binary16; `dpc_codec`'s declared
    /// error envelope covers it.
    pub fn from_f64(v: f64) -> f16 {
        f16::from_f32(v as f32)
    }

    /// Converts to `f32` exactly (binary16 ⊂ binary32).
    pub fn to_f32(self) -> f32 {
        let sign = u32::from(self.0 & 0x8000) << 16;
        let exp = (self.0 >> 10) & 0x1f;
        let frac = u32::from(self.0 & 0x3ff);
        match exp {
            0 => {
                if frac == 0 {
                    f32::from_bits(sign)
                } else {
                    // Subnormal: value = frac · 2⁻²⁴.
                    let v = frac as f32 * (1.0 / (1 << 24) as f32);
                    if sign != 0 {
                        -v
                    } else {
                        v
                    }
                }
            }
            0x1f => {
                if frac == 0 {
                    f32::from_bits(sign | 0x7f80_0000)
                } else {
                    f32::from_bits(sign | 0x7fc0_0000 | (frac << 13))
                }
            }
            _ => {
                let exp32 = u32::from(exp) + (127 - 15);
                f32::from_bits(sign | (exp32 << 23) | (frac << 13))
            }
        }
    }

    /// Converts to `f64` exactly (binary16 ⊂ binary64).
    pub fn to_f64(self) -> f64 {
        f64::from(self.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_round_trip() {
        for v in [0.0f64, -0.0, 1.0, -1.0, 0.5, 2.0, 65504.0, 1024.0, 0.25] {
            assert_eq!(f16::from_f64(v).to_f64(), v, "{v}");
        }
    }

    #[test]
    fn signs_and_specials() {
        assert_eq!(f16::from_f64(f64::INFINITY).to_bits(), 0x7c00);
        assert_eq!(f16::from_f64(f64::NEG_INFINITY).to_bits(), 0xfc00);
        assert!(f16::from_f64(f64::NAN).to_f64().is_nan());
        assert_eq!(f16::from_f64(-0.0).to_bits(), 0x8000);
        // Overflow rounds to infinity.
        assert_eq!(f16::from_f64(1e6).to_bits(), 0x7c00);
        // Underflow rounds to (signed) zero.
        assert_eq!(f16::from_f64(1e-9).to_bits(), 0x0000);
        assert_eq!(f16::from_f64(-1e-9).to_bits(), 0x8000);
    }

    #[test]
    fn subnormals() {
        // Smallest subnormal is 2⁻²⁴.
        let tiny = (2.0f64).powi(-24);
        assert_eq!(f16::from_f64(tiny).to_bits(), 0x0001);
        assert_eq!(f16::from_bits(0x0001).to_f64(), tiny);
        // Largest subnormal.
        let big_sub = 1023.0 * tiny;
        assert_eq!(f16::from_f64(big_sub).to_f64(), big_sub);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2⁻¹¹ is exactly halfway between 1 and 1 + 2⁻¹⁰: ties to
        // even keep 1.0.
        let halfway = 1.0 + (2.0f64).powi(-11);
        assert_eq!(f16::from_f64(halfway).to_f64(), 1.0);
        // Just above halfway rounds up.
        let above = 1.0 + (2.0f64).powi(-11) + (2.0f64).powi(-20);
        assert_eq!(f16::from_f64(above).to_f64(), 1.0 + (2.0f64).powi(-10));
    }

    #[test]
    fn relative_error_is_bounded() {
        // |x - f16(x)| ≤ |x|·2⁻¹⁰ + 2⁻²⁴ over a wide sweep.
        let mut x = 1e-8f64;
        while x < 6e4 {
            for v in [x, -x] {
                let back = f16::from_f64(v).to_f64();
                let eps = v.abs() * (2.0f64).powi(-10) + (2.0f64).powi(-24);
                assert!((v - back).abs() <= eps, "{v} -> {back}");
            }
            x *= 1.37;
        }
    }
}
