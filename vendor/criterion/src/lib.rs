//! Offline stand-in for `criterion`.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the bench-definition API the workspace's four bench targets
//! use (`criterion_group!`, `criterion_main!`, benchmark groups,
//! `bench_with_input`, `Bencher::iter`). Running a bench executes each
//! closure `sample_size` times and prints mean wall-clock time — enough to
//! eyeball regressions offline; there is no statistical analysis. Swap
//! this directory for the real crate when a registry is available; no
//! call sites need to change.

use std::fmt::Display;
use std::time::Instant;

/// Identifies one benchmark within a group (`name/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

/// Drives timing for one benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `iters` calls of `routine`, keeping its output live.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many iterations each benchmark body runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    fn run(&self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            iters: self.sample_size.max(1),
            elapsed_ns: 0,
        };
        f(&mut b);
        let mean = b.elapsed_ns as f64 / b.iters as f64 / 1e6;
        println!(
            "bench {}/{id}: {mean:.3} ms/iter ({} iters)",
            self.name, b.iters
        );
    }

    /// Benchmarks `f` against an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        self.run(&id.id.clone(), |b| f(b, input));
        self
    }

    /// Benchmarks a closure with no parameter.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        self.run(&id.into().id.clone(), f);
        self
    }

    /// Ends the group (provided for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Top-level benchmark registry handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: self,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        self
    }
}

/// Defeats constant-folding of benchmark results.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a bench group function the way criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
