//! Thin, dependency-free wrappers over the POSIX socket syscalls the
//! multiplexed transport needs: `poll(2)` for its readiness loops, and
//! a `setsockopt(SO_LINGER)` shim for abortive fleet teardown.
//!
//! The workspace builds with no registry access, so instead of `libc`
//! or a full reactor crate this module declares the two foreign
//! functions directly and exposes safe, EINTR-retrying entry points
//! over them. It follows the same vendoring discipline as the other
//! `vendor/` stand-ins: exactly the API subset the workspace uses,
//! documented for replacement — once a registry is reachable, swap the
//! `extern` declarations for `libc::poll` / `libc::setsockopt` (the
//! types below are layout-compatible with `libc::pollfd` /
//! `libc::linger`).
//!
//! Only Unix targets are supported; that is where the workspace's
//! loopback-socket transports run.

#![cfg(unix)]

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Data may be read without blocking (`POLLIN`).
pub const POLLIN: i16 = 0x001;
/// Writing is possible without blocking (`POLLOUT`).
pub const POLLOUT: i16 = 0x004;
/// Error condition on the descriptor (output only; `POLLERR`).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (output only; `POLLHUP`).
pub const POLLHUP: i16 = 0x010;

/// One entry of the `poll(2)` descriptor array, layout-compatible with
/// the kernel's `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// The file descriptor to watch (a negative value makes the kernel
    /// ignore the entry, which callers use to mask finished slots
    /// without re-packing the array).
    pub fd: RawFd,
    /// Requested events ([`POLLIN`] / [`POLLOUT`] bits).
    pub events: i16,
    /// Returned events, filled by the kernel on each call.
    pub revents: i16,
}

impl PollFd {
    /// A descriptor registered for `events`, with `revents` cleared.
    pub fn new(fd: RawFd, events: i16) -> Self {
        Self {
            fd,
            events,
            revents: 0,
        }
    }

    /// True when the kernel flagged any bit of `mask` (or an error /
    /// hang-up condition, which `poll` reports regardless of the
    /// requested set) on the last call.
    pub fn ready(&self, mask: i16) -> bool {
        self.revents & (mask | POLLERR | POLLHUP) != 0
    }
}

/// `struct linger`, layout-compatible with the kernel's.
#[repr(C)]
struct Linger {
    l_onoff: std::ffi::c_int,
    l_linger: std::ffi::c_int,
}

#[cfg(target_os = "linux")]
const SOL_SOCKET: std::ffi::c_int = 1;
#[cfg(target_os = "linux")]
const SO_LINGER: std::ffi::c_int = 13;
#[cfg(not(target_os = "linux"))]
const SOL_SOCKET: std::ffi::c_int = 0xffff;
#[cfg(not(target_os = "linux"))]
const SO_LINGER: std::ffi::c_int = 0x0080;

extern "C" {
    // int poll(struct pollfd *fds, nfds_t nfds, int timeout);
    // `nfds_t` is `unsigned long` on every Unix ABI this workspace
    // targets; `timeout` is milliseconds, -1 for "block indefinitely".
    fn poll(fds: *mut PollFd, nfds: std::ffi::c_ulong, timeout: std::ffi::c_int)
        -> std::ffi::c_int;

    // int setsockopt(int sockfd, int level, int optname,
    //                const void *optval, socklen_t optlen);
    fn setsockopt(
        sockfd: RawFd,
        level: std::ffi::c_int,
        optname: std::ffi::c_int,
        optval: *const std::ffi::c_void,
        optlen: u32,
    ) -> std::ffi::c_int;
}

/// Arms `SO_LINGER {on, 0}` on a connected socket: its eventual close
/// sends `RST` instead of walking the `FIN` handshake, so neither end
/// lingers in `TIME_WAIT`.
///
/// This is an *abortive* close — any unsent or unread data on the
/// connection is discarded with the reset — so it is only correct on a
/// socket whose application protocol has a final message after which
/// both directions are provably drained. The transports use it on the
/// site-worker end, which closes only after consuming the coordinator's
/// shutdown frame: without it, every torn-down fleet parks two sockets
/// per site in `TIME_WAIT` for 60 s, and back-to-back thousand-site
/// runs degrade several-fold as the kernel's connection table fills.
pub fn set_abortive_close(fd: RawFd) -> io::Result<()> {
    let linger = Linger {
        l_onoff: 1,
        l_linger: 0,
    };
    let rc = unsafe {
        setsockopt(
            fd,
            SOL_SOCKET,
            SO_LINGER,
            (&linger as *const Linger).cast(),
            std::mem::size_of::<Linger>() as u32,
        )
    };
    if rc == 0 {
        Ok(())
    } else {
        Err(io::Error::last_os_error())
    }
}

/// Blocks until at least one registered descriptor is ready (or the
/// timeout elapses), returning how many entries have non-zero
/// `revents`. `None` blocks indefinitely; sub-millisecond non-zero
/// timeouts round up to 1 ms so a short wait never degenerates into a
/// busy spin. `EINTR` is retried internally.
pub fn poll_fds(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let ms: std::ffi::c_int = match timeout {
        None => -1,
        Some(d) if d.is_zero() => 0,
        Some(d) => d
            .as_millis()
            .max(1)
            .min(std::ffi::c_int::MAX as u128)
            .try_into()
            .expect("clamped to c_int::MAX"),
    };
    loop {
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn connected_socket_is_writable_and_becomes_readable() {
        let (a, mut b) = pair();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLOUT)];
        assert_eq!(poll_fds(&mut fds, None).unwrap(), 1);
        assert!(fds[0].ready(POLLOUT));

        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, Some(Duration::ZERO)).unwrap(), 0);
        assert!(!fds[0].ready(POLLIN));
        b.write_all(b"x").unwrap();
        assert_eq!(poll_fds(&mut fds, Some(Duration::from_secs(5))).unwrap(), 1);
        assert!(fds[0].ready(POLLIN));
    }

    #[test]
    fn negative_fd_entries_are_ignored() {
        let (a, _b) = pair();
        let mut fds = [PollFd::new(-1, POLLIN), PollFd::new(a.as_raw_fd(), POLLOUT)];
        assert_eq!(poll_fds(&mut fds, None).unwrap(), 1);
        assert_eq!(fds[0].revents, 0);
        assert!(fds[1].ready(POLLOUT));
    }

    #[test]
    fn abortive_close_skips_the_fin_handshake() {
        use std::io::Read;
        let (a, mut b) = pair();
        set_abortive_close(a.as_raw_fd()).unwrap();
        drop(a);
        // The reset surfaces on the peer as an error (ECONNRESET) or,
        // if the read races the RST delivery, as an immediate EOF —
        // never as a hang.
        let mut buf = [0u8; 1];
        assert!(matches!(b.read(&mut buf), Ok(0) | Err(_)));
    }

    #[test]
    fn hangup_is_reported_as_ready() {
        let (a, b) = pair();
        drop(b);
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, Some(Duration::from_secs(5))).unwrap(), 1);
        assert!(fds[0].ready(POLLIN));
    }
}
