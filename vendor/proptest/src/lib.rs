//! Offline stand-in for `proptest`.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of proptest's API the workspace's property tests
//! use: the [`Strategy`] trait over ranges / tuples / mapped strategies,
//! [`collection::vec`], [`any`], [`ProptestConfig`], and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Semantics: each `#[test]` runs `config.cases` random cases from a seed
//! derived deterministically from the test's name, so failures reproduce
//! exactly across runs. There is no shrinking — a failing case panics with
//! its assertion message directly. Swap this directory for the real crate
//! when a registry is available; no call sites need to change, but case
//! generation differs from real proptest's, so properties tuned to these
//! particular random cases may surface new (real) counterexamples.

use std::ops::{Range, RangeInclusive};

/// Deterministic test RNG (xoshiro256** seeded from the test name).
pub mod test_runner {
    /// Per-test random generator.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Builds a generator whose stream depends only on `name`.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name, then SplitMix64 expansion.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut s = [0u64; 4];
            for w in &mut s {
                h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = h;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                *w = z ^ (z >> 31);
            }
            Self { s }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    pub use super::ProptestConfig;
}

use test_runner::TestRng;

/// Runner configuration (field subset of the real crate's).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for source compatibility; rejection sampling is not used.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            max_shrink_iters: 0,
            max_global_rejects: 1024,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let v = self.start + (rng.unit_f64() as $t) * (self.end - self.start);
                // Rounding can land on `end`; keep the interval half-open.
                if v >= self.end {
                    self.end.next_down()
                } else {
                    v
                }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                start + (rng.unit_f64() as $t) * (end - start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a full-domain default strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // All bit patterns, including infinities, NaNs and subnormals.
        f64::from_bits(rng.next_u64())
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T` (`any::<u64>()`, `any::<f64>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive length bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// One-stop imports mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };

    /// Alias so `prop::collection::vec` also resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a property-test condition (panics with context; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Declares property tests: each `fn` becomes a `#[test]` running
/// `config.cases` seeded random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg ($cfg:expr) $($(#[$meta:meta])+ fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let ($($arg,)+) =
                        ($($crate::Strategy::generate(&($strat), &mut __rng),)+);
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]
        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_and_map_compose(v in crate::collection::vec(0u64..5, 2..6).prop_map(|v| v.len())) {
            prop_assert!((2..6).contains(&v));
        }
    }
}
