//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so this vendored crate
//! provides the exact surface the workspace uses: [`Rng::gen`],
//! [`Rng::gen_range`], [`SeedableRng::seed_from_u64`], and the
//! [`rngs::SmallRng`] / [`rngs::StdRng`] generators. Both generators are
//! xoshiro256** seeded through SplitMix64 — deterministic, fast, and of
//! ample quality for seeded test workloads. Swap this directory for the
//! real crate when a registry is available; no call sites need to change,
//! but the random *streams* differ from real rand's (ChaCha12 StdRng,
//! xoshiro-seeded SmallRng), so seeded fixtures will produce different
//! data and stream-tuned test thresholds may need re-tuning.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their full domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Rejection-free modulo is fine here: spans are tiny relative
                // to 2^64 in every workload, so the bias is negligible.
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128).wrapping_sub(start as u128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span as u64) as $t)
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                let v = self.start + unit * (self.end - self.start);
                // `unit < 1` yet rounding can still land on `end`; the
                // contract is the half-open interval.
                if v >= self.end {
                    self.end.next_down()
                } else {
                    v
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                start + unit * (end - start)
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// The user-facing random-value interface (rand 0.8 style).
pub trait Rng: RngCore {
    /// Draws a value of type `T` over its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// xoshiro256** core shared by [`SmallRng`] and [`StdRng`].
    #[derive(Clone, Debug)]
    pub struct Xoshiro256 {
        s: [u64; 4],
    }

    impl Xoshiro256 {
        fn from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero words from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            Self { s }
        }

        fn next(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// A small, fast, non-cryptographic generator (stand-in for rand's).
    #[derive(Clone, Debug)]
    pub struct SmallRng(Xoshiro256);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self(Xoshiro256::from_u64(seed))
        }
    }

    /// The default generator (same core here; distinct stream constant).
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self(Xoshiro256::from_u64(seed ^ 0xa076_1d64_78bd_642f))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let n: usize = rng.gen_range(1..9);
            assert!((1..9).contains(&n));
            let m: usize = rng.gen_range(4..=4);
            assert_eq!(m, 4);
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
