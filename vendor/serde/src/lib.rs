//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access. Nothing in this workspace
//! serializes through serde yet — types merely carry
//! `#[derive(Serialize, Deserialize)]` so downstream users of the real
//! crate get impls. These no-op derives keep those annotations compiling;
//! swap this directory for real `serde` (with the `derive` feature) when a
//! registry is available and the same annotations produce real impls.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`'s derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`'s derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
