//! Offline stand-in for the `bytes` crate (1.x API subset).
//!
//! The build environment has no registry access, so this vendored crate
//! implements the surface the workspace's wire layer uses: [`Bytes`] /
//! [`BytesMut`] plus the [`Buf`] / [`BufMut`] traits. Reads are tracked
//! with a cursor instead of refcounted slices — semantics match the real
//! crate for every call pattern in this workspace (write, freeze, read
//! once through). Swap this directory for the real crate when a registry
//! is available; no call sites need to change.

use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer with a read cursor.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self {
            data: Arc::from(&[][..]),
            pos: 0,
        }
    }

    /// Copies `slice` into a fresh buffer.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Self {
            data: Arc::from(slice),
            pos: 0,
        }
    }

    /// Wraps a static slice (copied here; the real crate borrows).
    pub fn from_static(slice: &'static [u8]) -> Self {
        Self::copy_from_slice(slice)
    }

    /// Unread bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the unread bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(
            self.len() >= n,
            "buffer underflow: need {n}, have {}",
            self.len()
        );
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        s
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self {
            data: Arc::from(v.into_boxed_slice()),
            pos: 0,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

/// Sequential reads from a byte buffer.
pub trait Buf {
    /// Unread bytes.
    fn remaining(&self) -> usize;

    /// Reads one byte.
    fn get_u8(&mut self) -> u8;

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64;

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().unwrap())
    }
}

/// A growable mutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self { data: Vec::new() }
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// Sequential writes into a byte buffer.
pub trait BufMut {
    /// Writes one byte.
    fn put_u8(&mut self, v: u8);

    /// Writes a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64);

    /// Writes a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_f64_le(&mut self, v: f64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_f64_le(1.5);
        w.put_u64_le(42);
        assert_eq!(w.len(), 17);
        let mut b = w.freeze();
        assert_eq!(b.remaining(), 17);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_f64_le(), 1.5);
        assert_eq!(b.get_u64_le(), 42);
        assert!(b.is_empty());
    }

    #[test]
    fn clone_is_independent_cursor() {
        let mut a = Bytes::copy_from_slice(&[1, 2, 3]);
        let b = a.clone();
        a.get_u8();
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 3);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::copy_from_slice(&[1]);
        b.get_f64_le();
    }
}
